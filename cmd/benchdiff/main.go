// Command benchdiff is the CI bench-regression gate: it compares freshly
// measured performance against the numbers committed in the repository
// and fails (exit 1) on regression, so perf claims in BENCH_*.json stay
// honest as the code evolves.
//
// Three independent checks, each enabled by supplying its flag pair:
//
//	benchdiff -build-fresh /tmp/bench.json -build-committed BENCH_index_build.json
//	benchdiff -alloc-fresh /tmp/bench.txt  -alloc-committed BENCH_query_engine.json
//	benchdiff -kernels-fresh /tmp/k.json   -kernels-committed BENCH_kernels.json
//	benchdiff -cache-fresh /tmp/c.json     -cache-committed BENCH_cache.json
//
// The build check validates the schema of a fresh `annsctl bench` record
// and fails when the load-vs-rebuild speedup regressed by more than
// -max-regression (default 0.25) relative to the committed record — the
// snapshot subsystem's headline number. Absolute ms are not compared
// (runners differ); the speedup is a same-machine ratio.
//
// The alloc check parses `go test -bench -benchmem` output and fails
// when any benchmark named in the committed BENCH_query_engine.json
// allocates more per op than its committed "after" ceiling. allocs/op is
// deterministic on a given code path, which makes it the stable
// regression signal across runner hardware.
//
// The kernels check validates a fresh `annsctl bench -kernels` sweep
// against the committed BENCH_kernels.json: per shape, the batch
// kernel's allocs/op may not exceed the committed value (exact, like the
// alloc check) and its speedup over the frozen scalar reference may not
// regress by more than -kernels-max-regression; the sweep-wide geometric
// mean must clear the absolute -kernels-floor. Speedups are same-machine
// ratios, so they compare across runners; the wider default tolerance
// (0.5 vs the build check's 0.25) reflects that single-shape kernel
// timings are noisier than whole-index build/load times.
//
// The cache check validates a fresh `annsctl bench -cache` skew sweep
// against the committed BENCH_cache.json: per skew point, the cache-on
// vs cache-off throughput speedup may not regress by more than
// -cache-max-regression, and the θ=0.99 speedup must clear the absolute
// -cache-floor (the PR's acceptance number: ≥ 2x at the canonical YCSB
// skew). Speedups are same-machine throughput ratios over identical
// deterministic key streams, so they compare across runners.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"slices"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	buildFresh := flag.String("build-fresh", "", "fresh annsctl bench JSON")
	buildCommitted := flag.String("build-committed", "", "committed BENCH_index_build.json")
	allocFresh := flag.String("alloc-fresh", "", "fresh `go test -bench -benchmem` output")
	allocCommitted := flag.String("alloc-committed", "", "committed BENCH_query_engine.json")
	maxRegression := flag.Float64("max-regression", 0.25, "tolerated fractional speedup regression")
	kernelsFresh := flag.String("kernels-fresh", "", "fresh annsctl bench -kernels JSON")
	kernelsCommitted := flag.String("kernels-committed", "", "committed BENCH_kernels.json")
	kernelsMaxReg := flag.Float64("kernels-max-regression", 0.5, "tolerated fractional per-shape kernel speedup regression")
	kernelsFloor := flag.Float64("kernels-floor", 1.5, "absolute floor on the fresh sweep's geomean speedup vs the scalar reference")
	cacheFresh := flag.String("cache-fresh", "", "fresh annsctl bench -cache JSON")
	cacheCommitted := flag.String("cache-committed", "", "committed BENCH_cache.json")
	cacheMaxReg := flag.Float64("cache-max-regression", 0.5, "tolerated fractional per-skew cache speedup regression")
	cacheFloor := flag.Float64("cache-floor", 2.0, "absolute floor on the fresh θ=0.99 cache-on vs cache-off speedup")
	flag.Parse()

	ran := false
	failed := false
	if *buildFresh != "" || *buildCommitted != "" {
		if *buildFresh == "" || *buildCommitted == "" {
			log.Fatal("-build-fresh and -build-committed go together")
		}
		ran = true
		if !checkBuild(*buildFresh, *buildCommitted, *maxRegression) {
			failed = true
		}
	}
	if *allocFresh != "" || *allocCommitted != "" {
		if *allocFresh == "" || *allocCommitted == "" {
			log.Fatal("-alloc-fresh and -alloc-committed go together")
		}
		ran = true
		if !checkAllocs(*allocFresh, *allocCommitted) {
			failed = true
		}
	}
	if *kernelsFresh != "" || *kernelsCommitted != "" {
		if *kernelsFresh == "" || *kernelsCommitted == "" {
			log.Fatal("-kernels-fresh and -kernels-committed go together")
		}
		ran = true
		if !checkKernels(*kernelsFresh, *kernelsCommitted, *kernelsMaxReg, *kernelsFloor) {
			failed = true
		}
	}
	if *cacheFresh != "" || *cacheCommitted != "" {
		if *cacheFresh == "" || *cacheCommitted == "" {
			log.Fatal("-cache-fresh and -cache-committed go together")
		}
		ran = true
		if !checkCache(*cacheFresh, *cacheCommitted, *cacheMaxReg, *cacheFloor) {
			failed = true
		}
	}
	if !ran {
		log.Fatal("nothing to do; see -h")
	}
	if failed {
		os.Exit(1)
	}
}

// buildRecord mirrors the fields of annsctl bench's JSON that the gate
// reads; unknown fields are ignored so the record can grow. Config
// covers every workload- and index-shape parameter that moves the
// speedup (machine-dependent fields like workers/host_cpus stay out),
// so a drifted CI flag fails the config check instead of comparing
// incomparable ratios.
type buildRecord struct {
	Config struct {
		Kind   string `json:"kind"`
		N      int    `json:"n"`
		D      int    `json:"d"`
		K      int    `json:"k"`
		Shards int    `json:"shards"`
		Reps   int    `json:"reps"`
	} `json:"config"`
	SeqBuildMS     float64 `json:"seq_build_ms"`
	ParBuildMS     float64 `json:"par_build_ms"`
	SaveMS         float64 `json:"save_ms"`
	SnapshotBytes  int64   `json:"snapshot_bytes"`
	LoadMS         float64 `json:"load_ms"`
	LoadVsSeqBuild float64 `json:"load_vs_seq_build"`
	LoadVsParBuild float64 `json:"load_vs_par_build"`
	Version        uint32  `json:"snapshot_version"`
}

func readBuild(path string) (buildRecord, error) {
	var rec buildRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	// Schema gate: a record with missing or zero measurements means the
	// bench did not actually run, and comparing against it would pass
	// vacuously.
	switch {
	case rec.Config.N <= 0 || rec.Config.D <= 0:
		return rec, fmt.Errorf("%s: missing config.n/config.d", path)
	case rec.SeqBuildMS <= 0 || rec.ParBuildMS <= 0:
		return rec, fmt.Errorf("%s: missing build timings", path)
	case rec.LoadMS <= 0 || rec.SaveMS <= 0 || rec.SnapshotBytes <= 0:
		return rec, fmt.Errorf("%s: missing snapshot timings", path)
	case rec.LoadVsSeqBuild <= 0:
		return rec, fmt.Errorf("%s: missing load_vs_seq_build speedup", path)
	case rec.Version == 0:
		return rec, fmt.Errorf("%s: missing snapshot_version", path)
	}
	return rec, nil
}

func checkBuild(freshPath, committedPath string, maxReg float64) bool {
	fresh, err := readBuild(freshPath)
	if err != nil {
		log.Printf("FAIL build: fresh record invalid: %v", err)
		return false
	}
	committed, err := readBuild(committedPath)
	if err != nil {
		log.Printf("FAIL build: committed record invalid: %v", err)
		return false
	}
	if fresh.Version != committed.Version {
		log.Printf("FAIL build: snapshot format v%d, committed record measured v%d",
			fresh.Version, committed.Version)
		return false
	}
	// The speedup scales with corpus size, so comparing different bench
	// configs would measure the workload, not the code. Fail loudly.
	if fresh.Config != committed.Config {
		log.Printf("FAIL build: fresh config %+v differs from committed %+v; rerun the bench with the committed parameters",
			fresh.Config, committed.Config)
		return false
	}
	floor := committed.LoadVsSeqBuild * (1 - maxReg)
	ok := fresh.LoadVsSeqBuild >= floor
	verdict := "ok"
	if !ok {
		verdict = "FAIL"
	}
	log.Printf("%s build: load-vs-rebuild speedup %.1fx (committed %.1fx, floor %.1fx at -max-regression %.2f)",
		verdict, fresh.LoadVsSeqBuild, committed.LoadVsSeqBuild, floor, maxReg)
	return ok
}

// allocCeilings extracts per-benchmark allocs/op ceilings from the
// committed BENCH_query_engine.json: each entry's "after" measurement is
// the ceiling for the benchmark it names ("anns/BenchmarkQuery").
type queryEngineRecord struct {
	Benchmarks []struct {
		Name  string `json:"name"`
		After struct {
			AllocsOp float64 `json:"allocs_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

func allocCeilings(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec queryEngineRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	out := make(map[string]float64, len(rec.Benchmarks))
	for _, b := range rec.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("%s: benchmark with no name", path)
		}
		out[b.Name] = b.After.AllocsOp
	}
	return out, nil
}

// parseBenchOutput reads `go test -bench -benchmem` output and returns
// allocs/op keyed the way the committed record names benchmarks:
// "<module-relative-pkg>/<BenchName>" (e.g. "anns/BenchmarkQuery" for
// pkg repro/anns). Sub-benchmarks keep their slash-separated name.
func parseBenchOutput(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	pkg := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			if i := strings.Index(pkg, "/"); i >= 0 {
				pkg = pkg[i+1:] // strip the module name ("repro/")
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-P  N  x ns/op  y B/op  z allocs/op
		var allocs float64 = -1
		for i := 2; i < len(fields); i++ {
			if fields[i] == "allocs/op" && i > 0 {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err == nil {
					allocs = v
				}
			}
		}
		if allocs < 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		if pkg != "" {
			name = pkg + "/" + name
		}
		out[name] = allocs
	}
	return out, sc.Err()
}

func checkAllocs(freshPath, committedPath string) bool {
	ceilings, err := allocCeilings(committedPath)
	if err != nil {
		log.Printf("FAIL allocs: committed record invalid: %v", err)
		return false
	}
	fresh, err := parseBenchOutput(freshPath)
	if err != nil {
		log.Printf("FAIL allocs: cannot read bench output: %v", err)
		return false
	}
	ok := true
	checked := 0
	for name, ceiling := range ceilings {
		got, found := fresh[name]
		if !found {
			// Only gate benchmarks the fresh run measured; the CI step
			// chooses which packages to bench.
			continue
		}
		checked++
		if got > ceiling {
			log.Printf("FAIL allocs: %s: %.0f allocs/op exceeds committed ceiling %.0f", name, got, ceiling)
			ok = false
		} else {
			log.Printf("ok allocs: %s: %.0f <= %.0f", name, got, ceiling)
		}
	}
	if checked == 0 {
		log.Printf("FAIL allocs: fresh output matched none of the %d committed benchmarks", len(ceilings))
		return false
	}
	return ok
}

// kernelsRecord mirrors the fields of `annsctl bench -kernels` JSON that
// the gate reads; unknown fields are ignored so the sweep can grow.
type kernelsRecord struct {
	Config struct {
		Ds      []int `json:"ds"`
		Rows    []int `json:"rows"`
		Batches []int `json:"batches"`
	} `json:"config"`
	Shapes []kernelsShape `json:"shapes"`
	// GeomeanVsScalar summarizes the sweep; the absolute floor applies
	// to it rather than to single (noisier) shapes.
	GeomeanVsScalar float64 `json:"geomean_speedup_vs_scalar"`
}

type kernelsShape struct {
	D     int `json:"d"`
	Rows  int `json:"rows"`
	Batch int `json:"batch"`

	BatchNsPerQuery  float64 `json:"batch_ns_per_query"`
	BatchAllocsPerOp float64 `json:"batch_allocs_per_op"`
	SpeedupVsScalar  float64 `json:"speedup_vs_scalar"`
}

func (s kernelsShape) key() string { return fmt.Sprintf("d=%d rows=%d batch=%d", s.D, s.Rows, s.Batch) }

func readKernels(path string) (kernelsRecord, error) {
	var rec kernelsRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	// Schema gate: an empty or zeroed sweep means the bench did not run.
	if len(rec.Shapes) == 0 {
		return rec, fmt.Errorf("%s: no shapes", path)
	}
	for _, s := range rec.Shapes {
		if s.D <= 0 || s.Rows <= 0 || s.Batch <= 0 || s.BatchNsPerQuery <= 0 || s.SpeedupVsScalar <= 0 {
			return rec, fmt.Errorf("%s: shape %s has missing measurements", path, s.key())
		}
	}
	if rec.GeomeanVsScalar <= 0 {
		return rec, fmt.Errorf("%s: missing geomean_speedup_vs_scalar", path)
	}
	return rec, nil
}

// cacheRecord mirrors the fields of `annsctl bench -cache` JSON that the
// gate reads; unknown fields are ignored so the sweep can grow. Config
// covers every parameter that moves the speedup (corpus and pool shape,
// cache capacity, stream length), so a drifted bench flag fails the
// config check instead of comparing incomparable ratios.
type cacheRecord struct {
	Config struct {
		N            int       `json:"n"`
		D            int       `json:"d"`
		QueryPool    int       `json:"query_pool"`
		CacheEntries int       `json:"cache_entries"`
		Conc         int       `json:"conc"`
		Ops          int       `json:"ops"`
		Thetas       []float64 `json:"thetas"`
	} `json:"config"`
	Sweep []cachePoint `json:"sweep"`
	// SpeedupAtTheta99 is the acceptance headline the absolute floor
	// applies to.
	SpeedupAtTheta99 float64 `json:"speedup_at_theta_0_99"`
}

type cachePoint struct {
	Theta       float64 `json:"theta"`
	HitRate     float64 `json:"hit_rate"`
	CacheOffQPS float64 `json:"cache_off_qps"`
	CacheOnQPS  float64 `json:"cache_on_qps"`
	Speedup     float64 `json:"speedup"`
}

func readCache(path string) (cacheRecord, error) {
	var rec cacheRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	// Schema gate: an empty or zeroed sweep means the bench did not run.
	if len(rec.Sweep) == 0 {
		return rec, fmt.Errorf("%s: no sweep points", path)
	}
	for _, p := range rec.Sweep {
		if p.CacheOffQPS <= 0 || p.CacheOnQPS <= 0 || p.Speedup <= 0 {
			return rec, fmt.Errorf("%s: θ=%g has missing measurements", path, p.Theta)
		}
	}
	if rec.SpeedupAtTheta99 <= 0 {
		return rec, fmt.Errorf("%s: missing speedup_at_theta_0_99", path)
	}
	return rec, nil
}

func checkCache(freshPath, committedPath string, maxReg, floor float64) bool {
	fresh, err := readCache(freshPath)
	if err != nil {
		log.Printf("FAIL cache: fresh record invalid: %v", err)
		return false
	}
	committed, err := readCache(committedPath)
	if err != nil {
		log.Printf("FAIL cache: committed record invalid: %v", err)
		return false
	}
	if fresh.Config.N != committed.Config.N || fresh.Config.D != committed.Config.D ||
		fresh.Config.QueryPool != committed.Config.QueryPool ||
		fresh.Config.CacheEntries != committed.Config.CacheEntries ||
		fresh.Config.Conc != committed.Config.Conc || fresh.Config.Ops != committed.Config.Ops ||
		!slices.Equal(fresh.Config.Thetas, committed.Config.Thetas) {
		log.Printf("FAIL cache: fresh sweep config %+v differs from committed %+v; rerun with the committed shape",
			fresh.Config, committed.Config)
		return false
	}
	base := make(map[float64]cachePoint, len(committed.Sweep))
	for _, p := range committed.Sweep {
		base[p.Theta] = p
	}
	ok := true
	for _, p := range fresh.Sweep {
		c, found := base[p.Theta]
		if !found {
			log.Printf("FAIL cache: θ=%g not in the committed sweep", p.Theta)
			ok = false
			continue
		}
		pointFloor := c.Speedup * (1 - maxReg)
		if p.Speedup < pointFloor {
			log.Printf("FAIL cache: θ=%g: speedup %.2fx below floor %.2fx (committed %.2fx, -cache-max-regression %.2f)",
				p.Theta, p.Speedup, pointFloor, c.Speedup, maxReg)
			ok = false
		} else {
			log.Printf("ok cache: θ=%g: %.2fx on-vs-off (floor %.2fx), hit rate %.3f",
				p.Theta, p.Speedup, pointFloor, p.HitRate)
		}
	}
	if fresh.SpeedupAtTheta99 < floor {
		log.Printf("FAIL cache: θ=0.99 speedup %.2fx below the absolute floor %.2fx",
			fresh.SpeedupAtTheta99, floor)
		ok = false
	} else {
		log.Printf("ok cache: θ=0.99 speedup %.2fx (absolute floor %.2fx)", fresh.SpeedupAtTheta99, floor)
	}
	return ok
}

func checkKernels(freshPath, committedPath string, maxReg, floor float64) bool {
	fresh, err := readKernels(freshPath)
	if err != nil {
		log.Printf("FAIL kernels: fresh record invalid: %v", err)
		return false
	}
	committed, err := readKernels(committedPath)
	if err != nil {
		log.Printf("FAIL kernels: committed record invalid: %v", err)
		return false
	}
	if !slices.Equal(fresh.Config.Ds, committed.Config.Ds) ||
		!slices.Equal(fresh.Config.Rows, committed.Config.Rows) ||
		!slices.Equal(fresh.Config.Batches, committed.Config.Batches) {
		log.Printf("FAIL kernels: fresh sweep config %+v differs from committed %+v; rerun with the committed matrix",
			fresh.Config, committed.Config)
		return false
	}
	base := make(map[string]kernelsShape, len(committed.Shapes))
	for _, s := range committed.Shapes {
		base[s.key()] = s
	}
	ok := true
	for _, s := range fresh.Shapes {
		c, found := base[s.key()]
		if !found {
			log.Printf("FAIL kernels: %s not in the committed sweep", s.key())
			ok = false
			continue
		}
		if s.BatchAllocsPerOp > c.BatchAllocsPerOp {
			log.Printf("FAIL kernels: %s: %.1f allocs/op exceeds committed %.1f",
				s.key(), s.BatchAllocsPerOp, c.BatchAllocsPerOp)
			ok = false
		}
		shapeFloor := c.SpeedupVsScalar * (1 - maxReg)
		if s.SpeedupVsScalar < shapeFloor {
			log.Printf("FAIL kernels: %s: speedup %.2fx below floor %.2fx (committed %.2fx, -kernels-max-regression %.2f)",
				s.key(), s.SpeedupVsScalar, shapeFloor, c.SpeedupVsScalar, maxReg)
			ok = false
		} else {
			log.Printf("ok kernels: %s: %.2fx vs scalar (floor %.2fx), %.0f allocs/op",
				s.key(), s.SpeedupVsScalar, shapeFloor, s.BatchAllocsPerOp)
		}
	}
	if fresh.GeomeanVsScalar < floor {
		log.Printf("FAIL kernels: geomean speedup %.2fx below the absolute floor %.2fx",
			fresh.GeomeanVsScalar, floor)
		ok = false
	} else {
		log.Printf("ok kernels: geomean %.2fx vs scalar (absolute floor %.2fx)", fresh.GeomeanVsScalar, floor)
	}
	return ok
}
