package main

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/anns
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkQuery-4           	   63570	     18775 ns/op	       0 B/op	       0 allocs/op
BenchmarkQueryNear-4       	  458127	      2616 ns/op	       0 B/op	       0 allocs/op
BenchmarkQuerySharded-4    	   14433	     82954 ns/op	     368 B/op	       9 allocs/op
PASS
ok  	repro/anns	5.1s
pkg: repro/internal/core
BenchmarkQueryAlgo1K2-4    	   28345	     42313 ns/op	      16 B/op	       1 allocs/op
PASS
ok  	repro/internal/core	2.2s
`

func TestParseBenchOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(path, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseBenchOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"anns/BenchmarkQuery":                 0,
		"anns/BenchmarkQueryNear":             0,
		"anns/BenchmarkQuerySharded":          9,
		"internal/core/BenchmarkQueryAlgo1K2": 1,
	}
	for name, allocs := range want {
		v, ok := got[name]
		if !ok {
			t.Errorf("missing %s in %v", name, got)
		} else if v != allocs {
			t.Errorf("%s = %v allocs/op, want %v", name, v, allocs)
		}
	}
}

func TestAllocCeilingsFromCommittedRecord(t *testing.T) {
	// The committed BENCH_query_engine.json at the repo root is the real
	// input CI feeds this tool; parsing it here keeps the two in sync.
	ceilings, err := allocCeilings(filepath.Join("..", "..", "BENCH_query_engine.json"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := ceilings["anns/BenchmarkQuery"]; !ok || v != 0 {
		t.Errorf("anns/BenchmarkQuery ceiling = %v (present=%v), want 0", v, ok)
	}
	if v, ok := ceilings["internal/core/BenchmarkQueryAlgo2K8"]; !ok || v != 1 {
		t.Errorf("internal/core/BenchmarkQueryAlgo2K8 ceiling = %v (present=%v), want 1", v, ok)
	}
}

func TestCheckAllocsGate(t *testing.T) {
	dir := t.TempDir()
	committed := filepath.Join(dir, "committed.json")
	if err := os.WriteFile(committed, []byte(`{"benchmarks":[
		{"name":"anns/BenchmarkQuery","after":{"allocs_op":0}},
		{"name":"anns/BenchmarkQuerySharded","after":{"allocs_op":9}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := filepath.Join(dir, "ok.txt")
	if err := os.WriteFile(ok, []byte("pkg: repro/anns\nBenchmarkQuery-4 10 5 ns/op 0 B/op 0 allocs/op\nBenchmarkQuerySharded-4 10 5 ns/op 1 B/op 7 allocs/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !checkAllocs(ok, committed) {
		t.Error("within-ceiling run failed the gate")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("pkg: repro/anns\nBenchmarkQuery-4 10 5 ns/op 64 B/op 3 allocs/op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if checkAllocs(bad, committed) {
		t.Error("over-ceiling run passed the gate")
	}
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("no benchmarks here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if checkAllocs(empty, committed) {
		t.Error("vacuous run (no matched benchmarks) passed the gate")
	}
}

func TestCheckBuildGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	committed := write("committed.json", `{"config":{"n":4096,"d":512,"shards":4},
		"seq_build_ms":680,"par_build_ms":472,"save_ms":37,"snapshot_bytes":7611228,
		"load_ms":4.6,"load_vs_seq_build":147.1,"load_vs_par_build":102.2,"snapshot_version":1}`)
	good := write("good.json", `{"config":{"n":4096,"d":512,"shards":4},
		"seq_build_ms":700,"par_build_ms":300,"save_ms":30,"snapshot_bytes":7611228,
		"load_ms":5,"load_vs_seq_build":140,"load_vs_par_build":60,"snapshot_version":1}`)
	if !checkBuild(good, committed, 0.25) {
		t.Error("140x vs 147.1x committed (floor 110.3x) failed the gate")
	}
	slow := write("slow.json", `{"config":{"n":4096,"d":512,"shards":4},
		"seq_build_ms":700,"par_build_ms":300,"save_ms":30,"snapshot_bytes":7611228,
		"load_ms":50,"load_vs_seq_build":14,"load_vs_par_build":6,"snapshot_version":1}`)
	if checkBuild(slow, committed, 0.25) {
		t.Error("14x vs 147.1x committed passed the gate")
	}
	broken := write("broken.json", `{"config":{"n":4096,"d":512,"shards":4},"snapshot_version":1}`)
	if checkBuild(broken, committed, 0.25) {
		t.Error("schema-invalid fresh record passed the gate")
	}
}

func TestCheckKernelsGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	committed := write("committed.json", `{
		"config":{"ds":[256,1024],"rows":[128],"batches":[8]},
		"shapes":[
			{"d":256,"rows":128,"batch":8,"batch_ns_per_query":400,"batch_allocs_per_op":0,"speedup_vs_scalar":2.0},
			{"d":1024,"rows":128,"batch":8,"batch_ns_per_query":1100,"batch_allocs_per_op":0,"speedup_vs_scalar":2.2}],
		"geomean_speedup_vs_scalar":2.1}`)

	good := write("good.json", `{
		"config":{"ds":[256,1024],"rows":[128],"batches":[8]},
		"shapes":[
			{"d":256,"rows":128,"batch":8,"batch_ns_per_query":450,"batch_allocs_per_op":0,"speedup_vs_scalar":1.8},
			{"d":1024,"rows":128,"batch":8,"batch_ns_per_query":1200,"batch_allocs_per_op":0,"speedup_vs_scalar":2.0}],
		"geomean_speedup_vs_scalar":1.9}`)
	if !checkKernels(good, committed, 0.5, 1.5) {
		t.Error("within-tolerance sweep failed the gate")
	}

	// Per-shape regression: one shape collapses below committed*(1-0.5).
	regressed := write("regressed.json", `{
		"config":{"ds":[256,1024],"rows":[128],"batches":[8]},
		"shapes":[
			{"d":256,"rows":128,"batch":8,"batch_ns_per_query":900,"batch_allocs_per_op":0,"speedup_vs_scalar":0.9},
			{"d":1024,"rows":128,"batch":8,"batch_ns_per_query":1200,"batch_allocs_per_op":0,"speedup_vs_scalar":2.0}],
		"geomean_speedup_vs_scalar":1.6}`)
	if checkKernels(regressed, committed, 0.5, 1.5) {
		t.Error("0.9x vs 2.0x committed passed the per-shape gate")
	}

	// Alloc regression: the batch kernel started allocating.
	allocs := write("allocs.json", `{
		"config":{"ds":[256,1024],"rows":[128],"batches":[8]},
		"shapes":[
			{"d":256,"rows":128,"batch":8,"batch_ns_per_query":450,"batch_allocs_per_op":2,"speedup_vs_scalar":1.8},
			{"d":1024,"rows":128,"batch":8,"batch_ns_per_query":1200,"batch_allocs_per_op":0,"speedup_vs_scalar":2.0}],
		"geomean_speedup_vs_scalar":1.9}`)
	if checkKernels(allocs, committed, 0.5, 1.5) {
		t.Error("allocating batch kernel passed the gate")
	}

	// Absolute floor: every shape within tolerance but the sweep as a
	// whole no longer clears 1.5x.
	slow := write("slow.json", `{
		"config":{"ds":[256,1024],"rows":[128],"batches":[8]},
		"shapes":[
			{"d":256,"rows":128,"batch":8,"batch_ns_per_query":700,"batch_allocs_per_op":0,"speedup_vs_scalar":1.1},
			{"d":1024,"rows":128,"batch":8,"batch_ns_per_query":1800,"batch_allocs_per_op":0,"speedup_vs_scalar":1.2}],
		"geomean_speedup_vs_scalar":1.15}`)
	if checkKernels(slow, committed, 0.5, 1.5) {
		t.Error("sweep below the absolute geomean floor passed the gate")
	}

	// Config drift: a different matrix is not comparable.
	drifted := write("drifted.json", `{
		"config":{"ds":[512],"rows":[128],"batches":[8]},
		"shapes":[{"d":512,"rows":128,"batch":8,"batch_ns_per_query":500,"batch_allocs_per_op":0,"speedup_vs_scalar":2.0}],
		"geomean_speedup_vs_scalar":2.0}`)
	if checkKernels(drifted, committed, 0.5, 1.5) {
		t.Error("drifted sweep config passed the gate")
	}

	// Schema gate: empty shapes means the bench never ran.
	empty := write("empty.json", `{"config":{"ds":[],"rows":[],"batches":[]},"shapes":[],"geomean_speedup_vs_scalar":0}`)
	if checkKernels(empty, committed, 0.5, 1.5) {
		t.Error("empty sweep passed the gate")
	}
}

func TestCheckCacheGate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	committed := write("committed.json", `{
		"config":{"n":16384,"d":512,"query_pool":4096,"cache_entries":2048,"conc":8,"ops":12000,"thetas":[0,0.8,0.99,1.2]},
		"sweep":[
			{"theta":0,"hit_rate":0.51,"cache_off_qps":21000,"cache_on_qps":23000,"speedup":1.10},
			{"theta":0.8,"hit_rate":0.78,"cache_off_qps":21700,"cache_on_qps":54000,"speedup":2.49},
			{"theta":0.99,"hit_rate":0.88,"cache_off_qps":23800,"cache_on_qps":69000,"speedup":2.90},
			{"theta":1.2,"hit_rate":1.0,"cache_off_qps":27000,"cache_on_qps":92000,"speedup":3.41}],
		"speedup_at_theta_0_99":2.90}`)

	good := write("good.json", `{
		"config":{"n":16384,"d":512,"query_pool":4096,"cache_entries":2048,"conc":8,"ops":12000,"thetas":[0,0.8,0.99,1.2]},
		"sweep":[
			{"theta":0,"hit_rate":0.51,"cache_off_qps":20000,"cache_on_qps":21000,"speedup":1.05},
			{"theta":0.8,"hit_rate":0.78,"cache_off_qps":21000,"cache_on_qps":48000,"speedup":2.29},
			{"theta":0.99,"hit_rate":0.88,"cache_off_qps":22000,"cache_on_qps":57000,"speedup":2.59},
			{"theta":1.2,"hit_rate":1.0,"cache_off_qps":26000,"cache_on_qps":83000,"speedup":3.19}],
		"speedup_at_theta_0_99":2.59}`)
	if !checkCache(good, committed, 0.5, 2.0) {
		t.Error("within-tolerance sweep failed the gate")
	}

	// Per-skew regression: θ=0.99 collapses below committed*(1-0.5).
	regressed := write("regressed.json", `{
		"config":{"n":16384,"d":512,"query_pool":4096,"cache_entries":2048,"conc":8,"ops":12000,"thetas":[0,0.8,0.99,1.2]},
		"sweep":[
			{"theta":0,"hit_rate":0.51,"cache_off_qps":20000,"cache_on_qps":21000,"speedup":1.05},
			{"theta":0.8,"hit_rate":0.78,"cache_off_qps":21000,"cache_on_qps":48000,"speedup":2.29},
			{"theta":0.99,"hit_rate":0.30,"cache_off_qps":22000,"cache_on_qps":26000,"speedup":1.18},
			{"theta":1.2,"hit_rate":1.0,"cache_off_qps":26000,"cache_on_qps":83000,"speedup":3.19}],
		"speedup_at_theta_0_99":1.18}`)
	if checkCache(regressed, committed, 0.5, 2.0) {
		t.Error("1.18x vs 2.90x committed at θ=0.99 passed the gate")
	}

	// Absolute floor: every point within relative tolerance against a
	// weak committed record still has to clear 2x at θ=0.99.
	weakCommitted := write("weak_committed.json", `{
		"config":{"n":16384,"d":512,"query_pool":4096,"cache_entries":2048,"conc":8,"ops":12000,"thetas":[0.99]},
		"sweep":[{"theta":0.99,"hit_rate":0.5,"cache_off_qps":22000,"cache_on_qps":33000,"speedup":1.5}],
		"speedup_at_theta_0_99":1.5}`)
	weakFresh := write("weak_fresh.json", `{
		"config":{"n":16384,"d":512,"query_pool":4096,"cache_entries":2048,"conc":8,"ops":12000,"thetas":[0.99]},
		"sweep":[{"theta":0.99,"hit_rate":0.5,"cache_off_qps":22000,"cache_on_qps":33000,"speedup":1.5}],
		"speedup_at_theta_0_99":1.5}`)
	if checkCache(weakFresh, weakCommitted, 0.5, 2.0) {
		t.Error("1.5x at θ=0.99 passed the 2x absolute floor")
	}

	// Config drift: a different shape is not comparable.
	drifted := write("drifted.json", `{
		"config":{"n":4096,"d":512,"query_pool":4096,"cache_entries":2048,"conc":8,"ops":12000,"thetas":[0,0.8,0.99,1.2]},
		"sweep":[{"theta":0.99,"hit_rate":0.88,"cache_off_qps":22000,"cache_on_qps":57000,"speedup":2.59}],
		"speedup_at_theta_0_99":2.59}`)
	if checkCache(drifted, committed, 0.5, 2.0) {
		t.Error("drifted sweep config passed the gate")
	}

	// Schema gate: empty sweep means the bench never ran.
	empty := write("empty.json", `{"config":{"thetas":[]},"sweep":[],"speedup_at_theta_0_99":0}`)
	if checkCache(empty, committed, 0.5, 2.0) {
		t.Error("empty sweep passed the gate")
	}
}
