// Command annsquery loads a dataset produced by cmd/annsgen, builds the
// cell-probe index, runs the stored query stream, and reports per-query
// answers plus aggregate cell-probe accounting.
//
// Usage:
//
//	annsquery -in data.bin -k 3 [-algo simple|soph] [-gamma 2] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/anns"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	in := flag.String("in", "dataset.bin", "input dataset path")
	k := flag.Int("k", 3, "adaptivity budget (rounds)")
	algo := flag.String("algo", "simple", "simple (Algorithm 1) | soph (Algorithm 2)")
	gamma := flag.Float64("gamma", 2, "approximation ratio")
	reps := flag.Int("reps", 1, "independent repetitions (success boosting)")
	seed := flag.Uint64("seed", 42, "public randomness seed")
	verbose := flag.Bool("v", false, "print every query")
	flag.Parse()

	inst, err := dataset.Load(*in)
	if err != nil {
		log.Fatalf("annsquery: %v", err)
	}
	fmt.Printf("loaded %s\n", inst)

	opts := anns.Options{
		Dimension:   inst.D,
		Gamma:       *gamma,
		Rounds:      *k,
		Repetitions: *reps,
		Seed:        *seed,
	}
	if *algo == "soph" {
		opts.Algorithm = anns.Sophisticated
	} else if *algo != "simple" {
		log.Fatalf("annsquery: unknown -algo %q", *algo)
	}

	start := time.Now()
	points := make([]anns.Point, len(inst.DB))
	copy(points, inst.DB)
	idx, err := anns.Build(points, opts)
	if err != nil {
		log.Fatalf("annsquery: %v", err)
	}
	buildDur := time.Since(start)
	fmt.Printf("index built in %v (k=%d, γ=%v, algo=%s)\n",
		buildDur.Round(time.Millisecond), *k, *gamma, *algo)

	ok, failed := 0, 0
	var totalProbes, totalRounds, maxRounds, maxParallel int
	var probeDist, parallelDist []int
	// Accumulate pure query time so the statsz QPS measures the index,
	// not the -v printing below.
	var qtime time.Duration
	for i, q := range inst.Queries {
		t0 := time.Now()
		res, err := idx.Query(q.X)
		qtime += time.Since(t0)
		// Failed queries still pay for their probes in the model.
		totalProbes += res.Probes
		totalRounds += res.Rounds
		if res.Rounds > maxRounds {
			maxRounds = res.Rounds
		}
		if res.MaxParallel > maxParallel {
			maxParallel = res.MaxParallel
		}
		probeDist = append(probeDist, res.Probes)
		parallelDist = append(parallelDist, res.MaxParallel)
		if err != nil {
			failed++
			if *verbose {
				fmt.Printf("query %3d: FAILED probes=%d rounds=%d maxpar=%d (%v)\n",
					i, res.Probes, res.Rounds, res.MaxParallel, err)
			}
			continue
		}
		good := float64(res.Distance) <= *gamma*float64(q.NNDist)
		if good {
			ok++
		}
		if *verbose {
			fmt.Printf("query %3d: point #%d dist=%d (exact %d) probes=%d rounds=%d maxpar=%d %v\n",
				i, res.Index, res.Distance, q.NNDist, res.Probes, res.Rounds, res.MaxParallel, good)
		}
	}
	nq := len(inst.Queries)
	fmt.Printf("\n%d queries: %d γ-approximate, %d failed\n", nq, ok, failed)
	fmt.Printf("probes/query: %v\n", stats.SummarizeInts(probeDist))
	fmt.Printf("max parallel/query: %v\n", stats.SummarizeInts(parallelDist))
	if nq > 0 {
		fmt.Printf("avg probes/query: %.1f   max rounds: %d   max parallel: %d\n",
			float64(totalProbes)/float64(nq), maxRounds, maxParallel)
	}

	// Emit the same stats schema internal/server serves at /statsz, so
	// CLI runs and server runs can be diffed field for field.
	snap := server.StatsSnapshot{
		UptimeMS:    qtime.Milliseconds(),
		Queries:     int64(nq),
		Errors:      int64(failed),
		Probes:      int64(totalProbes),
		Rounds:      int64(totalRounds),
		MaxRounds:   int64(maxRounds),
		MaxParallel: int64(maxParallel),
		IndexSource: "built",
		IndexLoadMS: buildDur.Milliseconds(),
	}
	if sec := qtime.Seconds(); sec > 0 {
		snap.QPS = float64(nq) / sec
	}
	if nq > 0 {
		snap.ErrorRate = float64(failed) / float64(nq)
	}
	fmt.Printf("statsz: ")
	json.NewEncoder(os.Stdout).Encode(snap)
	th := eval.Theory{D: inst.D, Gamma: *gamma}
	fmt.Printf("theory: k(log d)^{1/k} = %.1f   lower bound = %.2f\n",
		th.Algo1Probes(*k), th.LowerBound(*k))
}
