// Command annsquery loads a dataset produced by cmd/annsgen, builds the
// cell-probe index, runs the stored query stream, and reports per-query
// answers plus aggregate cell-probe accounting.
//
// Usage:
//
//	annsquery -in data.bin -k 3 [-algo simple|soph] [-gamma 2] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/anns"
	"repro/internal/dataset"
	"repro/internal/eval"
)

func main() {
	in := flag.String("in", "dataset.bin", "input dataset path")
	k := flag.Int("k", 3, "adaptivity budget (rounds)")
	algo := flag.String("algo", "simple", "simple (Algorithm 1) | soph (Algorithm 2)")
	gamma := flag.Float64("gamma", 2, "approximation ratio")
	reps := flag.Int("reps", 1, "independent repetitions (success boosting)")
	seed := flag.Uint64("seed", 42, "public randomness seed")
	verbose := flag.Bool("v", false, "print every query")
	flag.Parse()

	inst, err := dataset.Load(*in)
	if err != nil {
		log.Fatalf("annsquery: %v", err)
	}
	fmt.Printf("loaded %s\n", inst)

	opts := anns.Options{
		Dimension:   inst.D,
		Gamma:       *gamma,
		Rounds:      *k,
		Repetitions: *reps,
		Seed:        *seed,
	}
	if *algo == "soph" {
		opts.Algorithm = anns.Sophisticated
	} else if *algo != "simple" {
		log.Fatalf("annsquery: unknown -algo %q", *algo)
	}

	start := time.Now()
	points := make([]anns.Point, len(inst.DB))
	copy(points, inst.DB)
	idx, err := anns.Build(points, opts)
	if err != nil {
		log.Fatalf("annsquery: %v", err)
	}
	fmt.Printf("index built in %v (k=%d, γ=%v, algo=%s)\n",
		time.Since(start).Round(time.Millisecond), *k, *gamma, *algo)

	ok, failed := 0, 0
	totalProbes, maxRounds := 0, 0
	for i, q := range inst.Queries {
		res, err := idx.Query(q.X)
		if err != nil {
			failed++
			if *verbose {
				fmt.Printf("query %3d: FAILED (%v)\n", i, err)
			}
			continue
		}
		totalProbes += res.Probes
		if res.Rounds > maxRounds {
			maxRounds = res.Rounds
		}
		good := float64(res.Distance) <= *gamma*float64(q.NNDist)
		if good {
			ok++
		}
		if *verbose {
			fmt.Printf("query %3d: point #%d dist=%d (exact %d) probes=%d rounds=%d %v\n",
				i, res.Index, res.Distance, q.NNDist, res.Probes, res.Rounds, good)
		}
	}
	nq := len(inst.Queries)
	fmt.Printf("\n%d queries: %d γ-approximate, %d failed\n", nq, ok, failed)
	if nq > failed {
		fmt.Printf("avg probes/query: %.1f   max rounds: %d\n",
			float64(totalProbes)/float64(nq-failed), maxRounds)
	}
	th := eval.Theory{D: inst.D, Gamma: *gamma}
	fmt.Printf("theory: k(log d)^{1/k} = %.1f   lower bound = %.2f\n",
		th.Algo1Probes(*k), th.LowerBound(*k))
}
