// Command annsrouter is the multi-node serving coordinator: it serves
// the /v1/query, /v1/batch, /v1/near API by scatter-gathering over
// remote annsd shard servers and merging their answers with the same
// Hamming-merge + rounds=max/probes=sum accounting as a single-process
// sharded server — distributed answers are byte-identical.
//
// The topology comes from the placement manifest `annsctl shard-split`
// writes (shard count, dimension, sizes); the replica URLs of each shard
// position come from repeated -shard flags:
//
//	annsctl shard-split -o /srv/shards -shards 2 -kind planted -d 512 -n 4096
//	annsd -addr :7101 -snapshot /srv/shards/shard-0.snap   # 2 replicas of shard 0
//	annsd -addr :7102 -snapshot /srv/shards/shard-0.snap
//	annsd -addr :7111 -snapshot /srv/shards/shard-1.snap   # 2 replicas of shard 1
//	annsd -addr :7112 -snapshot /srv/shards/shard-1.snap
//	annsrouter -addr :7120 -manifest /srv/shards/manifest.json \
//	  -shard 0=http://127.0.0.1:7101,http://127.0.0.1:7102 \
//	  -shard 1=http://127.0.0.1:7111,http://127.0.0.1:7112
//
// Replica membership is health-probe-driven (periodic /healthz polling,
// consecutive-failure eviction with exponential backoff, probe-driven
// readmission); slow shards hedge to a second replica after the shard's
// recent latency quantile; admitted requests are bounded. GET /statsz
// reports per-shard p50/p95/p99, hedge rate, and replica state.
//
// When the replicas are mutable (`annsd -mutable -base-snapshot … -wal
// …`), the router also serves POST /v1/insert and /v1/delete: each
// mutation routes to the shard's designated primary (recorded in the
// manifest, bumped on failover) and its WAL frame streams through the
// router to the shard's other replicas (DESIGN.md §11). -durability
// picks the ack rule: "primary" acks on the primary's WAL append,
// "quorum" waits for ⌊R/2⌋+1 replicas to hold the frame. On a primary
// death the router promotes the max-offset survivor, bumps the
// manifest's placement epoch, and rewrites the manifest in place so a
// router restart resumes from the promoted topology (OPERATIONS.md
// covers the runbook).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/router"
)

// Structured logging (log/slog JSON on stderr) replaces the scattered
// log.Printf: boot lines, slow queries, and sampled traces all land in
// one greppable stream.
var logger = obs.NewLogger(os.Stderr)

func infof(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

// shardFlags collects repeated -shard "POS=url[,url...]" assignments.
type shardFlags map[int][]string

func (f shardFlags) String() string { return fmt.Sprintf("%v", map[int][]string(f)) }

func (f shardFlags) Set(v string) error {
	pos, urls, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want POS=url[,url...], got %q", v)
	}
	s, err := strconv.Atoi(pos)
	if err != nil || s < 0 {
		return fmt.Errorf("bad shard position %q", pos)
	}
	for _, u := range strings.Split(urls, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		f[s] = append(f[s], strings.TrimSuffix(u, "/"))
	}
	if len(f[s]) == 0 {
		return fmt.Errorf("shard %d has no replica URLs", s)
	}
	return nil
}

func main() {
	addr := flag.String("addr", ":7120", "listen address")
	manifest := flag.String("manifest", "", "placement manifest from `annsctl shard-split` (required)")
	shards := shardFlags{}
	flag.Var(shards, "shard", "replica set for one shard position, POS=url[,url...] (repeat per shard)")

	cacheEntries := flag.Int("cache", 0, "router-level query-result cache capacity in entries (0 = disabled); shard snapshots are immutable, so entries never go stale and a hit skips the scatter entirely")
	maxInFlight := flag.Int("max-inflight", 512, "bounded in-flight admission (overflow → 503)")
	maxBatch := flag.Int("max-batch", 4096, "max points per /v1/batch request")
	timeout := flag.Duration("timeout", 2*time.Second, "default end-to-end deadline")
	reqTimeout := flag.Duration("request-timeout", time.Second, "per-replica attempt deadline (keep below -timeout so hung replicas fail over and accrue eviction pressure)")
	hedgeQ := flag.Float64("hedge-quantile", 0.95, "shard latency quantile that arms the hedge")
	hedgeCold := flag.Duration("hedge-cold", 50*time.Millisecond, "hedge delay while the latency window is cold")
	durability := flag.String("durability", router.DurabilityPrimary, "write ack rule for replicated mutations: primary | quorum")
	probeEvery := flag.Duration("probe-interval", 500*time.Millisecond, "replica health-poll period")
	evictAfter := flag.Int("evict-after", 2, "consecutive failures that evict a replica")
	backoffBase := flag.Duration("backoff-base", 500*time.Millisecond, "initial eviction backoff")
	backoffMax := flag.Duration("backoff-max", 8*time.Second, "eviction backoff cap")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests whose trace is logged (0..1)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log any request at or above this duration in full (0 = disabled)")
	traceSeed := flag.Uint64("trace-seed", 1, "trace-ID derivation seed (fixed seed = reproducible IDs)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	if *manifest == "" {
		fatalf("annsrouter: -manifest is required")
	}
	m, err := router.LoadManifest(*manifest)
	if err != nil {
		fatalf("annsrouter: %v", err)
	}
	if len(shards) != m.Shards {
		fatalf("annsrouter: manifest has %d shards, -shard flags cover %d", m.Shards, len(shards))
	}
	replicas := make([][]string, m.Shards)
	positions := make([]int, 0, len(shards))
	for s := range shards {
		positions = append(positions, s)
	}
	sort.Ints(positions)
	for _, s := range positions {
		if s >= m.Shards {
			fatalf("annsrouter: -shard %d out of range for %d shards", s, m.Shards)
		}
		replicas[s] = shards[s]
	}

	// The manifest's per-shard sizes and derived seeds let the health
	// prober detect misrouted replicas (a -shard flag pointing at the
	// wrong shard's servers) instead of merging their answers.
	sizes := make([]int, m.Shards)
	seeds := make([]uint64, m.Shards)
	for _, f := range m.Files {
		sizes[f.Shard] = f.N
		seeds[f.Shard] = f.Seed
	}
	rt, err := router.New(router.Config{
		Dimension:      m.Dimension,
		N:              m.N,
		Replicas:       replicas,
		ShardSizes:     sizes,
		ShardSeeds:     seeds,
		CacheEntries:   *cacheEntries,
		MaxInFlight:    *maxInFlight,
		MaxBatch:       *maxBatch,
		DefaultTimeout: *timeout,
		RequestTimeout: *reqTimeout,
		HedgeQuantile:  *hedgeQ,
		HedgeCold:      *hedgeCold,
		ProbeInterval:  *probeEvery,
		EvictAfter:     *evictAfter,
		BackoffBase:    *backoffBase,
		BackoffMax:     *backoffMax,
		Durability:     *durability,
		Manifest:       m,
		ManifestPath:   *manifest,
		Trace: obs.TracerConfig{
			Seed:      *traceSeed,
			Sample:    *traceSample,
			SlowQuery: time.Duration(*slowQueryMS) * time.Millisecond,
			Logger:    logger,
		},
	})
	if err != nil {
		fatalf("annsrouter: %v", err)
	}
	if *debugAddr != "" {
		go func() {
			infof("debug/pprof on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.PprofMux()); err != nil {
				infof("annsrouter: debug listener: %v", err)
			}
		}()
	}
	for s, urls := range replicas {
		infof("shard %d: %d replicas: %s (primary position %d)", s, len(urls), strings.Join(urls, " "), m.Files[s].Primary)
	}
	infof("writes: durability=%s, placement epoch %d", *durability, m.Epoch)
	if *cacheEntries > 0 {
		infof("result cache: %d entries (immutable snapshots: no invalidation needed)", *cacheEntries)
	} else {
		infof("result cache: disabled")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- rt.ListenAndServe(*addr) }()
	infof("routing %d shards (n=%d, d=%d) on %s", m.Shards, m.N, m.Dimension, *addr)

	select {
	case err := <-errc:
		if err != nil {
			fatalf("annsrouter: %v", err)
		}
	case <-ctx.Done():
		infof("shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := rt.Shutdown(shctx); err != nil {
			infof("annsrouter: shutdown: %v", err)
		}
		snap := rt.Stats()
		fmt.Printf("routed %d queries (%d near, %d batches), %d errors, %d hedges (%d wins), %d failovers\n",
			snap.Queries, snap.Near, snap.Batches, snap.Errors, snap.Hedges, snap.HedgeWins, snap.Failovers)
	}
}
