// Tradeoff sweeps the adaptivity budget k and prints the measured
// round/probe tradeoff of both of the paper's algorithms against the
// theory curves — the core "figure" of the reproduction, as a program.
//
// Run with: go run ./examples/tradeoff [-d 4096] [-n 300]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	d := flag.Int("d", 4096, "Hamming dimension")
	n := flag.Int("n", 300, "database size")
	flag.Parse()

	r := rng.New(11)
	in := workload.PlantedNN(r, *d, *n, 25, *d/24)
	th := eval.Theory{D: *d, Gamma: 2}

	fmt.Printf("d=%d n=%d γ=2: %d ball levels, fully-adaptive bound ≈ %.1f probes\n\n",
		*d, *n, int(2*log2(float64(*d))), th.FullyAdaptive())
	fmt.Printf("%-4s  %-14s  %-14s  %-12s  %-12s\n",
		"k", "algo1 probes", "algo2 probes", "theory(A1)", "lower bound")

	for _, k := range []int{1, 2, 3, 4, 6, 8, 12, 16} {
		idx := core.BuildIndex(in.DB, *d, core.Params{Gamma: 2, K: k, Seed: 33})
		m1 := eval.RunScheme(core.NewAlgo1(idx, k), in, 2)
		algo2 := "-"
		if k >= 2 {
			m2 := eval.RunScheme(core.NewAlgo2(idx, k), in, 2)
			algo2 = fmt.Sprintf("%.1f", m2.Probes.Mean)
		}
		fmt.Printf("%-4d  %-14.1f  %-14s  %-12.1f  %-12.2f\n",
			k, m1.Probes.Mean, algo2, th.Algo1Probes(k), th.LowerBound(k))
	}
	fmt.Println("\nReading the table: total probes fall steeply from k=1 to small k")
	fmt.Println("(the paper's k(log d)^{1/k} shape), then flatten toward the fully")
	fmt.Println("adaptive Θ(log log d / log log log d) regime; the lower-bound")
	fmt.Println("column is what no k-round scheme can beat (Theorem 4).")
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n
}
