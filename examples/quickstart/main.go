// Quickstart: build an index over random points in {0,1}^1024, plant a
// near neighbor, and query it under a 3-round adaptivity budget.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func main() {
	const (
		d = 1024 // Hamming-cube dimension
		n = 500  // database size
	)
	r := rng.New(7)

	// A database of uniform random points (mutual distance ≈ d/2) …
	points := make([]anns.Point, n)
	for i := range points {
		points[i] = hamming.Random(r, d)
	}
	// … plus a query with a planted nearest neighbor at distance 40.
	query := hamming.Random(r, d)
	points[n-1] = hamming.AtDistance(r, query, d, 40)

	idx, err := anns.Build(points, anns.Options{
		Dimension: d,
		Gamma:     2, // approximation ratio
		Rounds:    3, // adaptivity budget k
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := idx.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer: point #%d at Hamming distance %d\n", res.Index, res.Distance)
	fmt.Printf("cost:   %d cell-probes in %d rounds (max %d in parallel)\n",
		res.Probes, res.Rounds, res.MaxParallel)
	fmt.Printf("(exact nearest neighbor is at distance %d; γ=2 allows up to %d)\n",
		40, 80)

	// The λ-near-neighbor variant costs exactly one probe (Theorem 11).
	near, err := idx.QueryNear(query, 40)
	if err != nil {
		log.Fatal(err)
	}
	if near.Index >= 0 {
		fmt.Printf("λ-ANNS: found point #%d at distance %d with %d probe\n",
			near.Index, near.Distance, near.Probes)
	} else {
		fmt.Println("λ-ANNS: no λ-near neighbor (NO answer)")
	}
}
