// Lambda demonstrates the 1-probe λ-near-neighbor search scheme
// (Theorem 11) as a duplicate-detection filter: a stream of documents is
// checked against a corpus of known fingerprints, flagging any document
// whose 1024-bit fingerprint is within Hamming distance λ of a known one.
// Every check costs exactly one cell-probe.
//
// Run with: go run ./examples/lambda
package main

import (
	"fmt"
	"log"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
)

const (
	dim    = 1024
	corpus = 400
	lambda = 12 // "near-duplicate" threshold
)

func main() {
	r := rng.New(2024)

	// Corpus of known fingerprints.
	known := make([]anns.Point, corpus)
	for i := range known {
		known[i] = hamming.Random(r, dim)
	}
	idx, err := anns.Build(known, anns.Options{Dimension: dim, Gamma: 2, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	// Stream: half near-duplicates (small perturbations of corpus entries),
	// half fresh documents.
	type doc struct {
		fp    anns.Point
		isDup bool
	}
	var stream []doc
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			base := known[r.Intn(corpus)]
			stream = append(stream, doc{hamming.AtDistance(r, base, dim, r.Intn(lambda+1)), true})
		} else {
			stream = append(stream, doc{hamming.Random(r, dim), false})
		}
	}

	probes, correct := 0, 0
	for i, dc := range stream {
		res, err := idx.QueryNear(dc.fp, lambda)
		if err != nil {
			log.Fatal(err)
		}
		probes += res.Probes
		flagged := res.Index >= 0
		ok := flagged == dc.isDup
		if ok {
			correct++
		}
		status := "fresh"
		if flagged {
			status = fmt.Sprintf("near-duplicate of #%d (distance %d ≤ γλ = %d)",
				res.Index, res.Distance, 2*lambda)
		}
		fmt.Printf("doc %2d: %-55s %s\n", i, status, mark(ok))
	}
	fmt.Printf("\n%d/%d classified correctly with %d total probes (exactly 1 per document)\n",
		correct, len(stream), probes)
	fmt.Println("note: documents between λ and γλ may legitimately flag either way;")
	fmt.Println("a wrong answer outside that band happens with the scheme's bounded error.")
}

func mark(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗ (within the scheme's error budget)"
}
