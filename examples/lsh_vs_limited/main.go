// lsh_vs_limited reproduces the paper's §1 motivation as a head-to-head:
// classic LSH (non-adaptive, cheap table, n^ρ probes) against Algorithm 1
// with k=1 (non-adaptive, large polynomial table, O(log d) probes) and
// k=3 (three rounds), on the same planted-neighbor workloads.
//
// Run with: go run ./examples/lsh_vs_limited
package main

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	const d = 1024
	fmt.Printf("%-6s  %-22s  %-22s  %-22s\n", "n",
		"LSH (1 round)", "algo1 k=1 (1 round)", "algo1 k=3 (3 rounds)")
	fmt.Printf("%-6s  %-22s  %-22s  %-22s\n", "",
		"probes / success", "probes / success", "probes / success")

	for _, n := range []int{128, 256, 512, 1024} {
		r := rng.New(uint64(n))
		in := workload.PlantedNN(r, d, n, 15, d/24)

		lsh := baseline.NewNearestLSH(r.Split(1), in.DB, d, 2)
		mLSH := eval.RunRaw("lsh", func(x bitvec.Vector) (int, int, int) {
			idx, st := lsh.Query(x)
			return idx, st.Probes, st.Rounds
		}, in, 2)

		idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, Seed: 77})
		m1 := eval.RunScheme(core.NewAlgo1(idx, 1), in, 2)
		m3 := eval.RunScheme(core.NewAlgo1(idx, 3), in, 2)

		fmt.Printf("%-6d  %7.0f / %-11.2f  %7.0f / %-11.2f  %7.0f / %-11.2f\n",
			n,
			mLSH.Probes.Mean, mLSH.Success.Rate(),
			m1.Probes.Mean, m1.Success.Rate(),
			m3.Probes.Mean, m3.Success.Rate())
	}

	fmt.Println("\nLSH's probe count grows ≈ √n (ρ = 1/γ = 1/2) while the cell-probe")
	fmt.Println("schemes stay flat in n — the efficiency the paper buys with table size:")
	fmt.Println("LSH stores O(n^{1+ρ}) buckets, Algorithm 1 a poly(n)-cell table.")
}
