// Clustered runs Algorithm 2 on a clustered database — the workload whose
// jumping level-set sizes |B_i| exercise the coarse-approximation
// machinery — and prints which shrinking-phase branch each query took
// (CASE 1/2/3 of §3.2) alongside the round/probe accounting.
//
// Run with: go run ./examples/clustered
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	const (
		d = 16384
		n = 200
		k = 12
	)
	r := rng.New(30)
	in := workload.Clustered(r, d, n, 30, 4, 256)
	fmt.Printf("workload: %s — 4 tight clusters, queries at cluster boundaries\n", in)

	idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, K: k, Seed: 31})
	a2 := core.NewAlgo2(idx, k)
	m := eval.RunScheme(a2, in, 2)
	if m.Queries == 0 {
		log.Fatal("no queries ran")
	}

	c := a2.Cases()
	fmt.Printf("\nAlgorithm 2 (k=%d, τ=%d, s=%.2f):\n", k, a2.Tau(), a2.S())
	fmt.Printf("  success:         %.2f\n", m.Success.Rate())
	fmt.Printf("  probes/query:    %.1f (worst %d, bound %d)\n",
		m.Probes.Mean, m.ProbesWorst, a2.ProbeBound())
	fmt.Printf("  rounds/query:    %.1f (budget %d, enforced)\n", m.Rounds.Mean, k)
	fmt.Printf("\nshrinking-phase branches over the whole stream:\n")
	fmt.Printf("  CASE 1 (gap collapses, no 2nd round): %d\n", c.Case1)
	fmt.Printf("  CASE 2 (both thresholds move):        %d\n", c.Case2)
	fmt.Printf("  CASE 3 (|C_u| shrinks by ~n^{-1/s}):  %d\n", c.Case3)
	fmt.Printf("  completion rounds:                    %d\n", c.Completions)

	// Algorithm 1 on the same index for contrast.
	m1 := eval.RunScheme(core.NewAlgo1(idx, k), in, 2)
	fmt.Printf("\nAlgorithm 1 at the same k: %.1f probes/query, %.1f rounds —\n",
		m1.Probes.Mean, m1.Rounds.Mean)
	fmt.Println("Algorithm 2 spends more probes here (simulable d is far below its")
	fmt.Println("asymptotic regime) but demonstrates the CASE-3 size-shrinking moves")
	fmt.Println("that give Theorem 3 its k + ((log d)/k)^{c/k} bound at scale.")
}
