package anns

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/segment"
)

// MutableIndex layers online inserts and deletes over the paper's
// build-once static core (DESIGN.md §7). It is an LSM-style delta tier:
//
//	memtable          bounded in-memory buffer of fresh inserts, queried
//	                  by exact brute-force Hamming scan (1 round, one
//	                  probe per entry)
//	sealed segments   memtables that hit MemtableCap, frozen and handed
//	                  to a background build of an immutable mini-index
//	                  (the exact Build the static path uses); queried by
//	                  scan until their index lands
//	base              the static index (the boot snapshot, or the last
//	                  compaction's from-scratch rebuild over live points)
//	tombstones        deleted point IDs, consulted at merge time and
//	                  physically applied by the next compaction
//
// A query fans out over {base, sealed segments, memtable} and folds the
// per-tier answers with MergeShardReplies — the same parallel-machine
// accounting the sharded and distributed tiers use (rounds = max over
// tiers, probes and max-parallel summed) — so the cell-probe accounting
// stays honest as the structure mutates. Every point carries a stable
// uint64 ID (the base's build positions, then sequentially assigned by
// Insert); Result.Index reports IDs, and Delete addresses them.
//
// A background compactor folds base + sealed segments into a fresh
// static build over the live points and swaps it in atomically; with a
// configured WAL every mutation is durable before it is acknowledged,
// boot replays the log, and a post-compaction snapshot truncates it.
type MutableIndex struct {
	cfg  MutableConfig
	opts Options

	mu      sync.RWMutex
	base    *Index
	baseIDs []uint64 // baseIDs[j] = ID of base row j; nil ⇒ identity
	segs    []*mutSegment
	mem     *segment.Memtable
	tomb    *segment.IDSet // deleted, not yet compacted away
	present *segment.IDSet // live IDs (for Delete validation and Len)
	nextID  uint64
	segSeq  uint64 // next sealed-segment sequence number (seed derivation)
	epoch   uint64 // next compaction epoch (seed derivation)
	replSeq uint64 // mutations applied since base (replication offset, §11)
	closed  bool

	// gen is the index generation: it advances on every state change that
	// can alter a query's folded reply (insert, delete, memtable seal,
	// segment mini-index landing, flush, compaction swap). Readers pair it
	// with a query result to know which epoch the answer belongs to; the
	// serving layer's result cache keys its validity on it (DESIGN.md §10).
	gen atomic.Uint64

	inserts, deletes, compactions, built int64
	walReplayed                          int
	lastCompactErr                       string
	compactQueued                        bool

	wal       *segment.WAL
	replaying bool

	compactMu sync.Mutex // serializes compactions

	runMu      sync.RWMutex // guards tasks against Close
	stopped    bool
	tasks      chan func()
	workerDone chan struct{}
	pending    sync.WaitGroup
}

// mutSegment is one sealed memtable: scanned raw until its mini-index
// build (seeded by SegmentSeed(seed, seq)) lands in idx.
type mutSegment struct {
	seq uint64
	mem *segment.Memtable
	idx atomic.Pointer[Index]
}

// MutableConfig tunes the mutable tier. Zero values select the defaults
// noted on each field.
type MutableConfig struct {
	// Options are the build options for sealed segments and compactions
	// (and the base, when NewMutable starts empty). When layering over an
	// existing base index the zero value adopts the base's options.
	Options Options
	// MemtableCap is the seal threshold: an insert that fills the
	// memtable to this size freezes it into a segment. Default 1024,
	// minimum 2 (a segment must be buildable).
	MemtableCap int
	// CompactEvery triggers a compaction when the sealed-segment count
	// reaches it. 0 disables auto-compaction (Compact stays available).
	CompactEvery int
	// Synchronous runs segment builds and triggered compactions inline on
	// the mutating call instead of on the background worker. Mutations
	// get seal/compaction latency spikes, but the structure evolves
	// deterministically with the operation sequence — what the churn
	// tests and the annsload -compare harness need.
	Synchronous bool
	// WALPath enables the write-ahead log at that path: appended (and
	// fsynced, per WALSyncEvery) before a mutation is acknowledged,
	// replayed by NewMutable/LoadMutable on boot, truncated after a
	// persisted snapshot. Empty disables durability.
	WALPath string
	// WALSyncEvery is the fsync cadence: 1 (the default) syncs every
	// record, n > 1 every n-th, negative never.
	WALSyncEvery int
	// SnapshotPath, when set, makes every completed compaction persist
	// the full tier state there (written to a temp file, atomically
	// renamed) and then truncate the WAL.
	SnapshotPath string
}

func (c MutableConfig) withDefaults() (MutableConfig, error) {
	if c.MemtableCap == 0 {
		c.MemtableCap = 1024
	}
	if c.MemtableCap < 2 {
		return c, errors.New("anns: MutableConfig.MemtableCap must be at least 2")
	}
	if c.CompactEvery < 0 {
		return c, errors.New("anns: MutableConfig.CompactEvery must not be negative")
	}
	if c.WALSyncEvery == 0 {
		c.WALSyncEvery = 1
	}
	return c, nil
}

// MutableStats is the tier's observable state, surfaced on /statsz.
type MutableStats struct {
	// LiveN is the number of live (inserted or base, not deleted) points.
	LiveN int
	// Memtable is the current unsealed entry count; Sealed the sealed
	// segment count awaiting compaction.
	Memtable, Sealed int
	// SegmentsBuilt counts mini-index builds completed; Compactions the
	// base rebuilds swapped in.
	SegmentsBuilt, Compactions int64
	// Tombstones counts deletes not yet applied by compaction.
	Tombstones int
	// NextID is the next insert's ID.
	NextID uint64
	// Inserts and Deletes are accepted-mutation totals since boot.
	Inserts, Deletes int64
	// WALReplayed is the record count replayed at boot; WALBytes the
	// current log size (0 without a WAL).
	WALReplayed int
	WALBytes    int64
	// ReplicationOffset is the count of mutations applied since the base
	// was built — the sequence number of the last applied frame (§11).
	ReplicationOffset uint64
	// LastCompactError is the most recent failed compaction's error
	// (empty when none failed).
	LastCompactError string
	// Generation is the current index generation (see Generation).
	Generation uint64
}

// SegmentSeed derives the public-randomness seed of sealed segment seq,
// and CompactionSeed the seed of compaction epoch e, from the tier's
// user seed. Both are exported so an oracle (or an operator) can rebuild
// exactly the index the tier built: the churn tests' byte-identical
// equivalence rests on these being pure functions of (seed, counter).
func SegmentSeed(seed, seq uint64) uint64 {
	return splitSeed(seed^0x5e65a11d5eed0001, int(seq))
}

// CompactionSeed is SegmentSeed's counterpart for compaction epochs.
func CompactionSeed(seed, epoch uint64) uint64 {
	return splitSeed(seed^0xc0a9ac7105eed002, int(epoch))
}

// NewMutable builds a mutable tier over base (which may be nil to start
// empty — the first compaction creates a base). The base's points keep
// their build positions as IDs; inserts are assigned IDs from
// base.Len() up. When cfg.WALPath is set, the log is opened and replayed
// before NewMutable returns, so the returned index already reflects
// every durable mutation.
func NewMutable(base *Index, cfg MutableConfig) (*MutableIndex, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if base != nil && cfg.Options.Dimension == 0 {
		cfg.Options = base.Options()
	}
	opts, err := cfg.Options.normalized()
	if err != nil {
		return nil, err
	}
	if base != nil && base.Options().Dimension != opts.Dimension {
		return nil, fmt.Errorf("anns: base dimension %d != configured dimension %d",
			base.Options().Dimension, opts.Dimension)
	}
	mx := &MutableIndex{
		cfg:     cfg,
		opts:    opts,
		mem:     segment.NewMemtable(),
		tomb:    segment.NewIDSet(),
		present: segment.NewIDSet(),
	}
	if base != nil {
		mx.base = base
		mx.nextID = uint64(base.Len())
		for id := uint64(0); id < mx.nextID; id++ {
			mx.present.Add(id)
		}
	}
	return mx, mx.start()
}

// start replays the WAL (if configured) and launches the background
// worker; shared by NewMutable and LoadMutable.
func (mx *MutableIndex) start() error {
	if mx.cfg.WALPath != "" {
		mx.replaying = true
		wal, replayed, err := segment.OpenWAL(mx.cfg.WALPath, mx.opts.Dimension, mx.cfg.WALSyncEvery, mx.applyWAL)
		mx.replaying = false
		if err != nil {
			return fmt.Errorf("anns: opening WAL: %w", err)
		}
		mx.wal = wal
		mx.walReplayed = replayed
	}
	if !mx.cfg.Synchronous {
		mx.tasks = make(chan func(), 64)
		mx.workerDone = make(chan struct{})
		go func() {
			defer close(mx.workerDone)
			for f := range mx.tasks {
				f()
			}
		}()
	}
	return nil
}

// applyWAL replays one durable mutation during boot. Strict ID checks
// catch a WAL paired with the wrong base state.
func (mx *MutableIndex) applyWAL(op segment.Op) error {
	switch op.Kind {
	case segment.OpInsert:
		if op.ID != mx.nextID {
			return fmt.Errorf("insert id %d does not continue this base (want %d)", op.ID, mx.nextID)
		}
		mx.mu.Lock()
		sealed, compact := mx.applyInsertLocked(op.ID, op.Point)
		mx.mu.Unlock()
		mx.follow(sealed, compact)
	case segment.OpDelete:
		if !mx.present.Has(op.ID) {
			return fmt.Errorf("delete of id %d which is not live under this base", op.ID)
		}
		mx.mu.Lock()
		mx.applyDeleteLocked(op.ID)
		mx.mu.Unlock()
	default:
		return fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return nil
}

// run hands f to the background worker, or runs it inline in synchronous
// mode and during replay. After Close it is dropped (the work — a
// segment build or compaction — is an optimization, never a promise).
func (mx *MutableIndex) run(f func()) {
	if mx.tasks == nil {
		f()
		return
	}
	mx.runMu.RLock()
	defer mx.runMu.RUnlock()
	if mx.stopped {
		return
	}
	mx.pending.Add(1)
	mx.tasks <- func() {
		defer mx.pending.Done()
		f()
	}
}

// follow dispatches the deferred work an insert produced.
func (mx *MutableIndex) follow(sealed *mutSegment, compact bool) {
	if sealed != nil {
		mx.run(func() { mx.buildSegment(sealed) })
	}
	if compact {
		mx.run(func() {
			if err := mx.Compact(); err != nil {
				mx.mu.Lock()
				mx.lastCompactErr = err.Error()
				mx.compactQueued = false
				mx.mu.Unlock()
			}
		})
	}
}

// Insert adds p (retained, not copied) and returns its assigned ID. With
// a WAL the mutation is durable before Insert returns. Filling the
// memtable seals it; in synchronous mode the segment build (and a
// triggered compaction) completes before Insert returns.
func (mx *MutableIndex) Insert(p Point) (uint64, error) {
	if len(p) != bitvec.Words(mx.opts.Dimension) {
		return 0, fmt.Errorf("anns: point has %d words, want %d for dimension %d",
			len(p), bitvec.Words(mx.opts.Dimension), mx.opts.Dimension)
	}
	mx.mu.Lock()
	if mx.closed {
		mx.mu.Unlock()
		return 0, errors.New("anns: mutable index is closed")
	}
	id := mx.nextID
	if mx.wal != nil {
		if err := mx.wal.Append(segment.Op{Kind: segment.OpInsert, ID: id, Point: p}); err != nil {
			mx.mu.Unlock()
			return 0, fmt.Errorf("anns: WAL append: %w", err)
		}
	}
	sealed, compact := mx.applyInsertLocked(id, p)
	mx.mu.Unlock()
	mx.follow(sealed, compact)
	return id, nil
}

func (mx *MutableIndex) applyInsertLocked(id uint64, p Point) (*mutSegment, bool) {
	mx.gen.Add(1)
	mx.replSeq++
	mx.nextID = id + 1
	mx.mem.Append(id, p)
	mx.present.Add(id)
	mx.inserts++
	var sealed *mutSegment
	if mx.mem.Len() >= mx.cfg.MemtableCap {
		mx.gen.Add(1)
		sealed = &mutSegment{seq: mx.segSeq, mem: mx.mem}
		mx.segSeq++
		mx.segs = append(mx.segs, sealed)
		mx.mem = segment.NewMemtable()
	}
	compact := false
	if mx.cfg.CompactEvery > 0 && len(mx.segs) >= mx.cfg.CompactEvery && !mx.compactQueued {
		mx.compactQueued = true
		compact = true
	}
	return sealed, compact
}

// Delete tombstones the point with the given ID, reporting whether it
// was live. Deleted points stop being returned immediately (the merge
// filters them) and are physically dropped by the next compaction.
func (mx *MutableIndex) Delete(id uint64) (bool, error) {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	if mx.closed {
		return false, errors.New("anns: mutable index is closed")
	}
	if !mx.present.Has(id) {
		return false, nil
	}
	if mx.wal != nil && !mx.replaying {
		if err := mx.wal.Append(segment.Op{Kind: segment.OpDelete, ID: id}); err != nil {
			return false, fmt.Errorf("anns: WAL append: %w", err)
		}
	}
	mx.applyDeleteLocked(id)
	return true, nil
}

func (mx *MutableIndex) applyDeleteLocked(id uint64) {
	mx.gen.Add(1)
	mx.replSeq++
	mx.present.Remove(id)
	mx.tomb.Add(id)
	mx.deletes++
}

// buildSegment builds the sealed segment's mini-index. Segments below
// the static build's 2-point floor stay scan-only (only the degenerate
// sub-2-live compaction residue can produce one).
func (mx *MutableIndex) buildSegment(seg *mutSegment) {
	if seg.mem.Len() < 2 {
		return
	}
	opts := mx.opts
	opts.Seed = SegmentSeed(mx.opts.Seed, seg.seq)
	ix, err := Build(seg.mem.Points(), opts)
	if err != nil {
		return // stays scan-only: slower but exact
	}
	seg.idx.Store(ix)
	atomic.AddInt64(&mx.built, 1)
	// A built segment answers with scheme accounting instead of scan
	// accounting, so the folded reply changes even though the answer point
	// does not — cached replies from before the landing are stale.
	mx.gen.Add(1)
}

// errEmptyIndex is returned by Query on a tier holding no points at all.
var errEmptyIndex = errors.New("anns: mutable index is empty")

// Query returns an approximate nearest neighbor over the live points:
// the per-tier answers (base and built segments run the paper's scheme,
// the memtable and raw segments exact scans) folded with the shard-merge
// accounting. Result.Index is the point's stable ID.
func (mx *MutableIndex) Query(x Point) (Result, error) {
	c := core.AcquireQueryCtx()
	defer core.ReleaseQueryCtx(c)
	return mx.search(x, c)
}

// QueryScratch is Query on a caller-held scratchpad.
func (mx *MutableIndex) QueryScratch(x Point, sc *Scratch) (Result, error) {
	return mx.search(x, sc.c)
}

// tierReplies collects one reply per non-empty tier. idmaps[i] translates
// reply i's local answer index to a point ID (nil = the local index
// already is the ID). ask runs the scheme tier (base or built segment)
// and scan the exact tier; both must fill Result accounting.
func (mx *MutableIndex) tierReplies(
	ask func(ix *Index) (Result, bool),
	scan func(m *segment.Memtable) (Result, bool),
) ([]ShardReply, [][]uint64) {
	replies := make([]ShardReply, 0, len(mx.segs)+2)
	idmaps := make([][]uint64, 0, len(mx.segs)+2)
	add := func(res Result, ok bool, ids []uint64) {
		// A candidate that is tombstoned is filtered at merge time: the
		// tier's accounting stands, its answer does not.
		if ok && res.Index >= 0 {
			id := uint64(res.Index)
			if ids != nil {
				id = ids[res.Index]
			}
			if mx.tomb.Has(id) {
				ok = false
			}
		}
		replies = append(replies, ShardReply{Result: res, OK: ok})
		idmaps = append(idmaps, ids)
	}
	if mx.base != nil {
		res, ok := ask(mx.base)
		add(res, ok, mx.baseIDs)
	}
	for _, seg := range mx.segs {
		if ix := seg.idx.Load(); ix != nil {
			res, ok := ask(ix)
			add(res, ok, seg.mem.IDs())
		} else {
			res, ok := scan(seg.mem)
			add(res, ok, seg.mem.IDs())
		}
	}
	if mx.mem.Len() > 0 {
		res, ok := scan(mx.mem)
		add(res, ok, mx.mem.IDs())
	}
	return replies, idmaps
}

// scanResult converts an exact scan into the shared Result accounting:
// one parallel round of one probe per scanned entry.
func scanResult(r segment.ScanResult) (Result, bool) {
	res := Result{Index: r.Pos, Distance: r.Dist, Probes: r.Scanned, MaxParallel: r.Scanned}
	if r.Scanned > 0 {
		res.Rounds = 1
	}
	if !r.Found {
		res.Index, res.Distance = -1, -1
	}
	return res, r.Found
}

func (mx *MutableIndex) search(x Point, c *core.QueryCtx) (Result, error) {
	mx.mu.RLock()
	defer mx.mu.RUnlock()
	replies, idmaps := mx.tierReplies(
		func(ix *Index) (Result, bool) {
			res, err := ix.queryCtx(x, c)
			return res, err == nil
		},
		func(m *segment.Memtable) (Result, bool) {
			return scanResult(m.Scan(x, mx.tomb))
		},
	)
	if len(replies) == 0 {
		return Result{Index: -1, Distance: -1}, errEmptyIndex
	}
	out := MergeShardReplies(replies, func(s, j int) int {
		if idmaps[s] == nil {
			return j
		}
		return int(idmaps[s][j])
	})
	if out.Index < 0 {
		return out, errors.New("anns: query failed")
	}
	return out, nil
}

// QueryNear answers the λ-near-neighbor decision over the live points
// with the same fan-out: scheme tiers run the paper's single-probe
// decision, exact tiers answer YES with their nearest live point when it
// lies within Gamma·lambda. NO only when every tier answers NO.
func (mx *MutableIndex) QueryNear(x Point, lambda float64) (Result, error) {
	c := core.AcquireQueryCtx()
	defer core.ReleaseQueryCtx(c)
	return mx.searchNear(x, lambda, c)
}

// QueryNearScratch is QueryNear on a caller-held scratchpad.
func (mx *MutableIndex) QueryNearScratch(x Point, lambda float64, sc *Scratch) (Result, error) {
	return mx.searchNear(x, lambda, sc.c)
}

func (mx *MutableIndex) searchNear(x Point, lambda float64, c *core.QueryCtx) (Result, error) {
	mx.mu.RLock()
	defer mx.mu.RUnlock()
	answered := false
	var firstErr error
	replies, idmaps := mx.tierReplies(
		func(ix *Index) (Result, bool) {
			res, err := ix.queryNearCtx(x, lambda, c)
			if err == nil {
				answered = true // NO is an answer; an error is not
			} else if firstErr == nil {
				firstErr = err
			}
			return res, err == nil && res.Index >= 0
		},
		func(m *segment.Memtable) (Result, bool) {
			res, found := scanResult(m.Scan(x, mx.tomb))
			answered = true
			if found && float64(res.Distance) > mx.opts.Gamma*lambda {
				// Nearest live entry is out of range: the exact answer is NO.
				res.Index, res.Distance = -1, -1
				found = false
			}
			return res, found
		},
	)
	out := MergeShardReplies(replies, func(s, j int) int {
		if idmaps[s] == nil {
			return j
		}
		return int(idmaps[s][j])
	})
	if out.Index < 0 {
		if answered || len(replies) == 0 {
			return out, nil // the NO answer (vacuously true when empty)
		}
		return out, fmt.Errorf("anns: near query failed on every tier: %w", firstErr)
	}
	return out, nil
}

// BatchQueryContext answers many queries over a fixed worker pool with
// the same semantics as the static index's batch entry point.
func (mx *MutableIndex) BatchQueryContext(ctx context.Context, xs []Point, workers int) []BatchResult {
	return batchRun(ctx, len(xs), workers, func(i int, sc *Scratch) (Result, error) {
		return mx.QueryScratch(xs[i], sc)
	})
}

// Len returns the live point count.
func (mx *MutableIndex) Len() int {
	mx.mu.RLock()
	defer mx.mu.RUnlock()
	return mx.present.Len()
}

// Options returns the tier's normalized build options.
func (mx *MutableIndex) Options() Options { return mx.opts }

// Generation returns the current index generation: a counter that advances
// on every mutation that can change a query's folded reply (insert,
// delete, seal, segment build landing, flush, compaction swap). It is the
// result cache's invalidation hook — a result computed at generation g is
// valid exactly while Generation() == g — and is lock-free so the serving
// hot path can read it per request. Generations are process-local: they
// restart at zero on boot and are not persisted.
func (mx *MutableIndex) Generation() uint64 { return mx.gen.Load() }

// MutableStats returns the tier's current counters (served on /statsz).
func (mx *MutableIndex) MutableStats() MutableStats {
	mx.mu.RLock()
	defer mx.mu.RUnlock()
	st := MutableStats{
		LiveN:             mx.present.Len(),
		Memtable:          mx.mem.Len(),
		Sealed:            len(mx.segs),
		SegmentsBuilt:     atomic.LoadInt64(&mx.built),
		Compactions:       mx.compactions,
		Tombstones:        mx.tomb.Len(),
		NextID:            mx.nextID,
		Inserts:           mx.inserts,
		Deletes:           mx.deletes,
		WALReplayed:       mx.walReplayed,
		LastCompactError:  mx.lastCompactErr,
		Generation:        mx.gen.Load(),
		ReplicationOffset: mx.replSeq,
	}
	if mx.wal != nil {
		st.WALBytes = mx.wal.Size()
	}
	return st
}

// WaitIdle blocks until all currently queued background work (segment
// builds, triggered compactions) has finished.
func (mx *MutableIndex) WaitIdle() { mx.pending.Wait() }

// Flush seals the current memtable (if non-empty) into a segment below
// the cap, without scheduling a mini-index build: the segment answers by
// exact scan until the next compaction folds it. It exists so a
// compaction can capture every point ("annsctl compact" folds base + WAL
// into one snapshot); steady-state serving never needs it.
func (mx *MutableIndex) Flush() {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	if mx.mem.Len() == 0 {
		return
	}
	mx.gen.Add(1)
	mx.segs = append(mx.segs, &mutSegment{seq: mx.segSeq, mem: mx.mem})
	mx.segSeq++
	mx.mem = segment.NewMemtable()
}

// Base returns the current base index and its ID mapping (ids[j] is the
// stable ID of base row j; a nil mapping means identity). ok is false
// when the tier has no base yet. After Flush + Compact the base holds
// every live point, which is how the offline compactor flattens a tier
// into a plain index snapshot.
func (mx *MutableIndex) Base() (ix *Index, ids []uint64, ok bool) {
	mx.mu.RLock()
	defer mx.mu.RUnlock()
	return mx.base, mx.baseIDs, mx.base != nil
}

// Compact folds the base and every currently sealed segment into a
// fresh static build over the live points (tombstones applied, IDs
// preserved in ascending order, seed CompactionSeed(seed, epoch)) and
// swaps it in atomically. Queries racing the swap see either the old
// tiers or the new base, never a mix. With a SnapshotPath the new state
// is persisted and the WAL truncated. Mutations arriving during the
// rebuild are untouched: the memtable is not captured, and tombstones
// added mid-rebuild survive the swap.
func (mx *MutableIndex) Compact() error {
	mx.compactMu.Lock()
	defer mx.compactMu.Unlock()

	mx.mu.RLock()
	base, baseIDs := mx.base, mx.baseIDs
	captured := append([]*mutSegment(nil), mx.segs...)
	t0 := mx.tomb.Clone()
	e := mx.epoch
	replaying := mx.replaying
	mx.mu.RUnlock()

	if base == nil && len(captured) == 0 {
		mx.mu.Lock()
		mx.compactQueued = false
		mx.mu.Unlock()
		return nil
	}

	var ids []uint64
	var pts []Point
	keep := func(id uint64, p Point) {
		if !t0.Has(id) {
			ids = append(ids, id)
			pts = append(pts, p)
		}
	}
	if base != nil {
		for j, p := range base.points() {
			id := uint64(j)
			if baseIDs != nil {
				id = baseIDs[j]
			}
			keep(id, p)
		}
	}
	for _, seg := range captured {
		segIDs, segPts := seg.mem.IDs(), seg.mem.Points()
		for j := range segIDs {
			keep(segIDs[j], segPts[j])
		}
	}
	// Tiers are already ID-ascending (the base holds the oldest IDs, and
	// segments seal in insertion order), but the rebuild's input order is
	// part of its identity, so sort defensively.
	sort.Sort(&idPointSort{ids: ids, pts: pts})

	var newBase *Index
	if len(pts) >= 2 {
		opts := mx.opts
		opts.Seed = CompactionSeed(mx.opts.Seed, e)
		var err error
		newBase, err = Build(pts, opts)
		if err != nil {
			return fmt.Errorf("anns: compaction rebuild: %w", err)
		}
	}

	mx.mu.Lock()
	if newBase != nil {
		mx.base, mx.baseIDs = newBase, ids
		mx.segs = mx.segs[len(captured):]
	} else {
		// Fewer than 2 live points cannot carry a static build: the
		// residue lives on as a scan-only segment (or nothing at all).
		mx.base, mx.baseIDs = nil, nil
		rest := mx.segs[len(captured):]
		if len(ids) > 0 {
			residue := &mutSegment{seq: mx.segSeq, mem: segment.NewMemtableFrom(ids, pts)}
			mx.segSeq++
			mx.segs = append([]*mutSegment{residue}, rest...)
		} else {
			mx.segs = rest
		}
	}
	mx.gen.Add(1)
	mx.tomb.AndNot(t0)
	mx.epoch = e + 1
	mx.compactions++
	mx.lastCompactErr = ""
	mx.compactQueued = false
	mx.mu.Unlock()

	if mx.cfg.SnapshotPath != "" && !replaying {
		if err := mx.persist(); err != nil {
			return fmt.Errorf("anns: persisting compaction snapshot: %w", err)
		}
	}
	return nil
}

// idPointSort sorts parallel (ids, pts) slices by ascending ID.
type idPointSort struct {
	ids []uint64
	pts []Point
}

func (s *idPointSort) Len() int           { return len(s.ids) }
func (s *idPointSort) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *idPointSort) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.pts[i], s.pts[j] = s.pts[j], s.pts[i]
}

// persist writes the full tier state to cfg.SnapshotPath (temp file +
// atomic rename) and truncates the WAL. It holds the read lock for the
// duration: mutations must be excluded (an insert landing between the
// snapshot encode and the WAL truncation would be lost on replay), but
// a shared lock already guarantees that — mutations and WAL appends all
// run under the write lock — while queries keep flowing through a
// potentially long encode+fsync. WAL.Size is the one field the stats
// path reads concurrently with the truncation, and it is atomic.
func (mx *MutableIndex) persist() error {
	tmp := mx.cfg.SnapshotPath + ".tmp"
	mx.mu.RLock()
	defer mx.mu.RUnlock()
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := mx.saveLocked(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, mx.cfg.SnapshotPath); err != nil {
		os.Remove(tmp)
		return err
	}
	if mx.wal != nil {
		return mx.wal.Truncate()
	}
	return nil
}

// TruncateWAL resets the write-ahead log to empty. Only call once the
// state it describes is durably captured elsewhere — it is the offline
// compactor's completion step after saving the merged snapshot. No-op
// without a WAL.
func (mx *MutableIndex) TruncateWAL() error {
	mx.mu.Lock()
	defer mx.mu.Unlock()
	if mx.wal == nil {
		return nil
	}
	return mx.wal.Truncate()
}

// Close stops the background worker (dropping queued optimization work),
// rejects further mutations, and closes the WAL. Queries against the
// final state remain valid.
func (mx *MutableIndex) Close() error {
	mx.mu.Lock()
	if mx.closed {
		mx.mu.Unlock()
		return nil
	}
	mx.closed = true
	mx.mu.Unlock()

	mx.runMu.Lock()
	mx.stopped = true
	mx.runMu.Unlock()
	mx.pending.Wait()
	if mx.tasks != nil {
		close(mx.tasks)
		<-mx.workerDone
	}
	if mx.wal != nil {
		return mx.wal.Close()
	}
	return nil
}
