package anns

import (
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/segment"
)

// Replica-side replication (DESIGN.md §11). A replica is a MutableIndex
// whose mutations arrive as WAL frames instead of client calls: the
// primary (or the router relaying for it) ships each framed op tagged
// with its sequence number — the primary's replication offset after
// applying it — and ApplyReplicated applies it through the exact code
// path a local mutation takes (WAL append included, so the replica is
// independently durable and restarts at its applied offset). Because
// frame application is the same deterministic state transition on every
// replica, equal offsets mean byte-identical index state.

// ErrReplicationGap tags a frame whose sequence number skips ahead of
// the replica's applied offset: frames in between are missing and must
// be fetched from the primary's WAL before this one can apply.
var ErrReplicationGap = errors.New("anns: replication gap")

// ReplicationOffset returns the number of mutations applied since the
// base: 0 on a freshly built tier, restored by WAL replay on boot, and
// bumped by every applied insert or live delete. Frame sequence numbers
// are 1-based — frame seq applies exactly when the offset is seq-1.
func (mx *MutableIndex) ReplicationOffset() uint64 {
	mx.mu.RLock()
	defer mx.mu.RUnlock()
	return mx.replSeq
}

// ApplyReplicated applies one replicated frame at sequence number seq.
// Semantics:
//
//	seq <= offset   duplicate delivery — already applied, a no-op (nil):
//	                relays may retry freely
//	seq >  offset+1 gap — ErrReplicationGap, nothing applied; the caller
//	                fetches the missing frames and retries in order
//	seq == offset+1 applied, through the same WAL-append + mutation path
//	                a local Insert/Delete takes
//
// ID checks are strict, exactly like boot replay: an insert must carry
// the replica's next ID and a delete must address a live point —
// anything else means the streams diverged, which is an error, never a
// silent repair.
func (mx *MutableIndex) ApplyReplicated(seq uint64, op segment.Op) error {
	mx.mu.Lock()
	if mx.closed {
		mx.mu.Unlock()
		return errors.New("anns: mutable index is closed")
	}
	if seq <= mx.replSeq {
		mx.mu.Unlock()
		return nil // duplicate: idempotent by offset
	}
	if seq != mx.replSeq+1 {
		off := mx.replSeq
		mx.mu.Unlock()
		return fmt.Errorf("%w: frame seq %d arrived at applied offset %d", ErrReplicationGap, seq, off)
	}
	switch op.Kind {
	case segment.OpInsert:
		if len(op.Point) != bitvec.Words(mx.opts.Dimension) {
			mx.mu.Unlock()
			return fmt.Errorf("anns: replicated insert point has %d words, want %d for dimension %d",
				len(op.Point), bitvec.Words(mx.opts.Dimension), mx.opts.Dimension)
		}
		if op.ID != mx.nextID {
			mx.mu.Unlock()
			return fmt.Errorf("anns: replicated insert id %d does not continue this replica (want %d): streams diverged", op.ID, mx.nextID)
		}
		if mx.wal != nil {
			if err := mx.wal.Append(op); err != nil {
				mx.mu.Unlock()
				return fmt.Errorf("anns: WAL append: %w", err)
			}
		}
		sealed, compact := mx.applyInsertLocked(op.ID, op.Point)
		mx.mu.Unlock()
		mx.follow(sealed, compact)
		return nil
	case segment.OpDelete:
		if !mx.present.Has(op.ID) {
			mx.mu.Unlock()
			return fmt.Errorf("anns: replicated delete of id %d which is not live on this replica: streams diverged", op.ID)
		}
		if mx.wal != nil {
			if err := mx.wal.Append(op); err != nil {
				mx.mu.Unlock()
				return fmt.Errorf("anns: WAL append: %w", err)
			}
		}
		mx.applyDeleteLocked(op.ID)
		mx.mu.Unlock()
		return nil
	default:
		mx.mu.Unlock()
		return fmt.Errorf("anns: replicated frame has unknown op kind %d", op.Kind)
	}
}

// WALFrames reads raw frame bytes for the records after applied offset
// `from`, up to maxBytes of whole frames (<= 0 for no bound), returning
// the blob and the frame count. It is the primary-side catch-up feed: a
// replica at offset o is missing exactly the WAL records after record o,
// because with replication the WAL is never truncated mid-stream (a
// replicated tier must not configure SnapshotPath — a truncation would
// orphan every lagging replica). Requires a configured WAL.
func (mx *MutableIndex) WALFrames(from uint64, maxBytes int) ([]byte, int, error) {
	if mx.cfg.WALPath == "" {
		return nil, 0, errors.New("anns: WALFrames requires a configured WAL")
	}
	if mx.wal != nil {
		// Appends may be buffered by the OS but are visible to readers of
		// the same file; no sync is needed for a same-host read.
		mx.mu.RLock()
		if from > mx.replSeq {
			off := mx.replSeq
			mx.mu.RUnlock()
			return nil, 0, fmt.Errorf("anns: WALFrames from offset %d beyond applied offset %d", from, off)
		}
		mx.mu.RUnlock()
	}
	return segment.ReadWALFrames(mx.cfg.WALPath, mx.opts.Dimension, from, maxBytes)
}
