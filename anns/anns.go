// Package anns is the public API of the reproduction: randomized
// approximate nearest-neighbor search in d-dimensional Hamming space in
// the cell-probe model with limited adaptivity (Liu–Pan–Yin, SPAA 2016).
//
// A typical use builds an Index over a database of bit vectors and issues
// queries under a round budget k:
//
//	idx, err := anns.Build(points, anns.Options{Dimension: d, Rounds: 3})
//	res, err := idx.Query(x)             // γ-approximate nearest neighbor
//	near, err := idx.QueryNear(x, 16)    // λ-near neighbor, exactly 1 probe
//
// Every answer carries the cell-probe accounting (rounds of parallel
// probes, total probes) so callers can observe the paper's
// adaptivity/efficiency tradeoff directly.
package anns

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/par"
)

// Options configures Build.
type Options struct {
	// Dimension is the Hamming-cube dimension d. Required.
	Dimension int
	// Gamma is the approximation ratio γ > 1. Default 2.
	Gamma float64
	// Rounds is the adaptivity budget k ≥ 1. Default 2.
	Rounds int
	// Algorithm selects the query scheme. Default Simple (Algorithm 1);
	// Sophisticated (Algorithm 2) needs Rounds ≥ 2 and shines for large k.
	Algorithm Algorithm
	// Repetitions > 1 boosts the success probability by that many
	// independent parallel repetitions (multiplies space and probes,
	// preserves rounds). Default 1.
	Repetitions int
	// Seed fixes the public randomness. The zero seed is a valid seed.
	Seed uint64
	// RowsMultiplier overrides the calibrated c₁ = c₂ sketch-row constant
	// (advanced; see DESIGN.md §3.2). Zero keeps the default.
	RowsMultiplier float64
	// BuildWorkers sizes the preprocessing worker pool: sketch-family
	// drawing, per-level database sketching, and boosted repetitions all
	// fan out across it. 0 selects GOMAXPROCS; 1 builds sequentially
	// (the benchmark baseline). Queries are unaffected.
	BuildWorkers int
}

// Algorithm selects between the paper's two schemes.
type Algorithm int

const (
	// Simple is Algorithm 1 (Theorem 2): works for every k ≥ 1,
	// O(k·(log d)^{1/k}) probes.
	Simple Algorithm = iota
	// Sophisticated is Algorithm 2 (Theorem 3): for larger k,
	// O(k + ((log d)/k)^{c/k}) probes.
	Sophisticated
)

// Point is a point of {0,1}^d packed into 64-bit words (see NewPoint).
type Point = bitvec.Vector

// NewPoint builds a Point from a bool slice.
func NewPoint(bits []bool) Point {
	v := bitvec.New(len(bits))
	for i, b := range bits {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// NewPointFromBytes builds a Point of dimension d from packed
// little-endian bytes (bit i of the point is bit i%8 of byte i/8).
func NewPointFromBytes(data []byte, d int) (Point, error) {
	if len(data)*8 < d {
		return nil, fmt.Errorf("anns: %d bytes cannot hold %d bits", len(data), d)
	}
	v := bitvec.New(d)
	for i := 0; i < d; i++ {
		if data[i/8]&(1<<uint(i%8)) != 0 {
			v.Set(i, true)
		}
	}
	return v, nil
}

// Result is one query's answer and accounting.
type Result struct {
	// Index is the returned database point's position in the Build slice;
	// -1 when the query failed (or, for QueryNear, when the answer is NO).
	Index int
	// Distance is the Hamming distance from the query to the answer
	// (-1 when Index < 0).
	Distance int
	// Rounds and Probes are the cell-probe accounting of this query.
	Rounds int
	Probes int
	// MaxParallel is the largest number of probes issued in one round.
	MaxParallel int
}

// Index is a built data structure.
type Index struct {
	opts      Options
	scheme    core.CtxScheme
	lambda    *core.Lambda
	coreIndex *core.Index
	db        []Point
}

// normalized validates the options and fills defaults; Build and
// NewMutable share it so the mutable tier accepts exactly the options
// the static build does.
func (opts Options) normalized() (Options, error) {
	if opts.Dimension <= 1 {
		return opts, errors.New("anns: Options.Dimension must be at least 2")
	}
	if opts.Gamma == 0 {
		opts.Gamma = 2
	}
	if opts.Gamma <= 1 {
		return opts, errors.New("anns: Options.Gamma must exceed 1")
	}
	if opts.Rounds == 0 {
		opts.Rounds = 2
	}
	if opts.Rounds < 1 {
		return opts, errors.New("anns: Options.Rounds must be at least 1")
	}
	if opts.Algorithm == Sophisticated && opts.Rounds < 2 {
		return opts, errors.New("anns: the sophisticated algorithm needs Rounds >= 2")
	}
	if opts.Repetitions == 0 {
		opts.Repetitions = 1
	}
	if opts.Repetitions < 1 {
		return opts, errors.New("anns: Options.Repetitions must be at least 1")
	}
	return opts, nil
}

// Build preprocesses the database. The points must all have dimension
// opts.Dimension; the slice is retained (not copied).
func Build(points []Point, opts Options) (*Index, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	if len(points) < 2 {
		return nil, errors.New("anns: need at least 2 database points")
	}
	want := bitvec.Words(opts.Dimension)
	for i, p := range points {
		if len(p) != want {
			return nil, fmt.Errorf("anns: point %d has %d words, want %d for dimension %d",
				i, len(p), want, opts.Dimension)
		}
	}

	// The build is eager (every per-level sketch block is materialized up
	// front, across the worker pool): serving indexes answer their first
	// query at steady-state cost and snapshot without further computation.
	workers := par.Workers(opts.BuildWorkers)
	build := func(seed uint64, buildWorkers int) (core.Scheme, *core.Index) {
		idx := core.BuildIndexParallel(points, opts.Dimension, core.Params{
			Gamma: opts.Gamma,
			K:     opts.Rounds,
			C1:    opts.RowsMultiplier,
			C2:    opts.RowsMultiplier,
			Seed:  seed,
		}, buildWorkers)
		return newScheme(idx, opts), idx
	}

	out := &Index{opts: opts, db: points}
	if opts.Repetitions == 1 {
		s, idx := build(opts.Seed, workers)
		out.scheme = s.(core.CtxScheme)
		out.lambda = core.NewLambda(idx)
		out.coreIndex = idx
	} else {
		// Repetitions are independent (distinct seeds), so they build
		// concurrently, each with a proportional slice of the pool.
		schemes := make([]core.Scheme, opts.Repetitions)
		indexes := make([]*core.Index, opts.Repetitions)
		inner := workers / opts.Repetitions
		if inner < 1 {
			inner = 1
		}
		par.Do(workers, opts.Repetitions, func(i int) {
			schemes[i], indexes[i] = build(opts.Seed+uint64(i), inner)
		})
		out.scheme = core.NewBoostedOver(schemes, indexes)
		// The boosted scheme's first repetition *is* the seed-0 index;
		// reuse it for the λ-ANNS path and space accounting instead of
		// preprocessing the same (points, seed) pair a second time.
		idx := indexes[0]
		out.lambda = core.NewLambda(idx)
		out.coreIndex = idx
	}
	return out, nil
}

// newScheme builds the query scheme the options select over idx.
func newScheme(idx *core.Index, opts Options) core.Scheme {
	if opts.Algorithm == Sophisticated {
		return core.NewAlgo2(idx, opts.Rounds)
	}
	return core.NewAlgo1(idx, opts.Rounds)
}

// coreIndexes returns the per-repetition core indexes (one entry when the
// index is not boosted) — the snapshot save path.
func (ix *Index) coreIndexes() []*core.Index {
	if b, ok := ix.scheme.(*core.Boosted); ok {
		out := make([]*core.Index, b.Reps())
		for i := range out {
			out[i] = b.Index(i)
		}
		return out
	}
	return []*core.Index{ix.coreIndex}
}

// Scratch is a reusable query-execution scratchpad wrapping the core
// layer's pooled QueryCtx: probe buffers, per-level sketch scratch, and
// round accounting. Long-lived callers (batch workers, server workers)
// hold one Scratch and thread it through every query so that steady-state
// execution allocates nothing; one-shot callers can ignore it — Query and
// QueryNear draw from the shared pool internally. A Scratch is not safe
// for concurrent use.
type Scratch struct {
	c *core.QueryCtx
}

// NewScratch returns a fresh scratchpad.
func NewScratch() *Scratch { return &Scratch{c: core.NewQueryCtx()} }

// scratchPool recycles warmed scratchpads for the internal batch workers,
// so a batch reuses contexts across calls instead of building fresh ones
// per worker per batch.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

func acquireScratch() *Scratch   { return scratchPool.Get().(*Scratch) }
func releaseScratch(sc *Scratch) { scratchPool.Put(sc) }

// toResult converts a core result into the public accounting. All fields
// are plain values, so nothing retains context-owned memory.
func toResult(res core.Result) Result {
	return Result{
		Index:       res.Index,
		Distance:    -1,
		Rounds:      res.Stats.Rounds,
		Probes:      res.Stats.Probes,
		MaxParallel: res.Stats.MaxProbesInRound(),
	}
}

// Query returns a γ-approximate nearest neighbor of x using at most
// Options.Rounds rounds of parallel cell-probes. A failure (possible with
// probability bounded by the scheme's error) yields an error.
func (ix *Index) Query(x Point) (Result, error) {
	c := core.AcquireQueryCtx()
	out, err := ix.queryCtx(x, c)
	core.ReleaseQueryCtx(c)
	return out, err
}

// QueryScratch is Query on a caller-held scratchpad (per-worker reuse
// instead of per-call pool traffic).
func (ix *Index) QueryScratch(x Point, sc *Scratch) (Result, error) {
	return ix.queryCtx(x, sc.c)
}

func (ix *Index) queryCtx(x Point, c *core.QueryCtx) (Result, error) {
	res := ix.scheme.QueryWithCtx(x, c)
	out := toResult(res)
	if res.Failed() {
		if res.Err != nil {
			return out, fmt.Errorf("anns: query failed: %w", res.Err)
		}
		return out, errors.New("anns: query failed")
	}
	out.Distance = bitvec.Distance(ix.point(res.Index), x)
	return out, nil
}

// QueryNear answers the approximate λ-near-neighbor search problem with a
// single cell-probe (Theorem 11): if some database point is within
// distance lambda of x, it returns (with the scheme's success
// probability) a point within Gamma·lambda; if no point is within
// Gamma·lambda it returns Index = -1 with a nil error (the NO answer).
func (ix *Index) QueryNear(x Point, lambda float64) (Result, error) {
	c := core.AcquireQueryCtx()
	out, err := ix.queryNearCtx(x, lambda, c)
	core.ReleaseQueryCtx(c)
	return out, err
}

// QueryNearScratch is QueryNear on a caller-held scratchpad.
func (ix *Index) QueryNearScratch(x Point, lambda float64, sc *Scratch) (Result, error) {
	return ix.queryNearCtx(x, lambda, sc.c)
}

func (ix *Index) queryNearCtx(x Point, lambda float64, c *core.QueryCtx) (Result, error) {
	res := ix.lambda.QueryNearWithCtx(x, lambda, c)
	out := toResult(res)
	if res.Err != nil {
		return out, fmt.Errorf("anns: near query failed: %w", res.Err)
	}
	if res.Index >= 0 {
		out.Distance = bitvec.Distance(ix.point(res.Index), x)
	}
	return out, nil
}

// Len returns the database size.
func (ix *Index) Len() int {
	if ix.db != nil {
		return len(ix.db)
	}
	return ix.coreIndex.N()
}

// point returns database point i: built indexes hold the caller's
// slice, snapshot-loaded ones serve rows straight from the flat block
// (on the mmap path, the file's own pages) without materializing
// per-row headers on the open path.
func (ix *Index) point(i int) Point {
	if ix.db != nil {
		return ix.db[i]
	}
	return ix.coreIndex.DBRow(i)
}

// points returns the whole database as per-point views, materializing
// the header slice once for snapshot-loaded indexes (the mutable tier's
// segment adoption path needs the full slice).
func (ix *Index) points() []Point {
	if ix.db != nil {
		return ix.db
	}
	return ix.coreIndex.DBVectors()
}

// Options returns the options the index was built with.
func (ix *Index) Options() Options { return ix.opts }

// Space summarizes the index's storage accounting.
type Space struct {
	// NominalLog2Cells is log₂ of the cell count of the *model* data
	// structure (the paper's n^{O(1)} table; astronomically large and never
	// materialized).
	NominalLog2Cells float64
	// MaterializedCells is the number of cells the lazy simulator has
	// actually evaluated so far.
	MaterializedCells int
}

// Space reports the model-vs-simulated storage accounting (experiment E8's
// quantities, exposed on the public API).
func (ix *Index) Space() Space {
	rep := ix.coreIndex.Tables.Space()
	return Space{
		NominalLog2Cells:  rep.NominalLogCells,
		MaterializedCells: rep.MaterializedWord,
	}
}
