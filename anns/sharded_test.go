package anns

import (
	"context"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/workload"
)

func shardedTestInstance(t *testing.T) *workload.Instance {
	t.Helper()
	r := rng.New(77)
	return workload.PlantedNN(r, 256, 96, 24, 10)
}

func TestBuildShardedValidation(t *testing.T) {
	r := rng.New(5)
	pts := make([]Point, 6)
	for i := range pts {
		pts[i] = hamming.Random(r, 128)
	}
	if _, err := BuildSharded(pts, 0, Options{Dimension: 128}); err == nil {
		t.Error("accepted 0 shards")
	}
	if _, err := BuildSharded(pts, 4, Options{Dimension: 128}); err == nil {
		t.Error("accepted 6 points over 4 shards (needs 8)")
	}
	if _, err := BuildSharded(pts, 3, Options{}); err == nil {
		t.Error("accepted missing dimension")
	}
	sx, err := BuildSharded(pts, 3, Options{Dimension: 128, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sx.Shards() != 3 || sx.Len() != 6 {
		t.Errorf("Shards=%d Len=%d", sx.Shards(), sx.Len())
	}
}

func TestSplitSeedDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for _, seed := range []uint64{0, 1, 2} {
		for s := 0; s < 16; s++ {
			v := splitSeed(seed, s)
			if seen[v] {
				t.Fatalf("splitSeed collision at seed=%d shard=%d", seed, s)
			}
			seen[v] = true
		}
	}
}

// TestShardedMergeAccounting pins the aggregation rule down exactly:
// rounds = max, probes = sum, max parallel = sum, answer = closest
// successful shard mapped back to its global index.
func TestShardedMergeAccounting(t *testing.T) {
	sx := &ShardedIndex{
		global: [][]uint64{{0, 3, 6}, {1, 4, 7}, {2, 5, 8}},
	}
	results := []Result{
		{Index: 2, Distance: 9, Rounds: 2, Probes: 10, MaxParallel: 5},
		{Index: 0, Distance: 4, Rounds: 3, Probes: 7, MaxParallel: 4},
		{Index: 1, Distance: 6, Rounds: 1, Probes: 20, MaxParallel: 20},
	}
	out := sx.mergeShardResults(results, []bool{true, true, true}, nil)
	if out.Rounds != 3 {
		t.Errorf("rounds = %d, want max 3", out.Rounds)
	}
	if out.Probes != 37 {
		t.Errorf("probes = %d, want sum 37", out.Probes)
	}
	if out.MaxParallel != 29 {
		t.Errorf("max parallel = %d, want sum 29", out.MaxParallel)
	}
	if out.Index != 1 || out.Distance != 4 {
		t.Errorf("answer = (%d, %d), want global index 1 at distance 4", out.Index, out.Distance)
	}

	// A failed shard contributes accounting but never the answer.
	out = sx.mergeShardResults(results, []bool{false, false, true}, nil)
	if out.Index != 5 || out.Distance != 6 {
		t.Errorf("answer = (%d, %d), want global index 5 at distance 6", out.Index, out.Distance)
	}
	if out.Probes != 37 {
		t.Errorf("failed shards must still be charged: probes = %d, want 37", out.Probes)
	}

	// All shards failed: no answer, full charge.
	out = sx.mergeShardResults(results, []bool{false, false, false}, nil)
	if out.Index != -1 || out.Distance != -1 {
		t.Errorf("want no answer, got (%d, %d)", out.Index, out.Distance)
	}
}

// TestShardedVsSingleAndExact checks merge correctness end to end: the
// sharded answer must be a real database point at its claimed distance,
// never beat the exact scan, stay within the round budget, and achieve
// γ-approximate recall comparable to a single unsharded index.
func TestShardedVsSingleAndExact(t *testing.T) {
	inst := shardedTestInstance(t)
	const gamma, k, shards = 2.0, 3, 4
	opts := Options{Dimension: inst.D, Gamma: gamma, Rounds: k, Seed: 9}

	pts := make([]Point, len(inst.DB))
	copy(pts, inst.DB)
	sx, err := BuildSharded(pts, shards, opts)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Build(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	exact := baseline.NewLinearScan(inst.DB)

	shardedGood, singleGood := 0, 0
	for qi, q := range inst.Queries {
		_, exactStats := exact.Query(q.X)
		if exactStats.Probes != len(inst.DB) {
			t.Fatalf("exact scan accounting broke: %d probes", exactStats.Probes)
		}
		res, err := sx.Query(q.X)
		if err == nil {
			if res.Index < 0 || res.Index >= len(inst.DB) {
				t.Fatalf("query %d: global index %d out of range", qi, res.Index)
			}
			if got := bitvec.Distance(pts[res.Index], q.X); got != res.Distance {
				t.Fatalf("query %d: claimed distance %d but point %d is at %d",
					qi, res.Distance, res.Index, got)
			}
			if res.Distance < q.NNDist {
				t.Fatalf("query %d: sharded distance %d beats exact NN %d", qi, res.Distance, q.NNDist)
			}
			if res.Rounds > k {
				t.Fatalf("query %d: %d rounds exceeds budget k=%d", qi, res.Rounds, k)
			}
			if res.MaxParallel*res.Rounds < res.Probes {
				t.Fatalf("query %d: accounting inconsistent: maxpar=%d rounds=%d probes=%d",
					qi, res.MaxParallel, res.Rounds, res.Probes)
			}
			if float64(res.Distance) <= gamma*float64(q.NNDist) {
				shardedGood++
			}
		}
		if r2, err := single.Query(q.X); err == nil &&
			float64(r2.Distance) <= gamma*float64(q.NNDist) {
			singleGood++
		}
	}
	nq := len(inst.Queries)
	if shardedGood < nq*3/4 {
		t.Errorf("sharded recall %d/%d below 75%%", shardedGood, nq)
	}
	// Sharding must not collapse answer quality relative to one index.
	if shardedGood < singleGood-nq/4 {
		t.Errorf("sharded recall %d/%d far below single-index %d/%d",
			shardedGood, nq, singleGood, nq)
	}
}

func TestShardedQueryNear(t *testing.T) {
	r := rng.New(123)
	inst := workload.Annulus(r, 256, 80, 20, 8, 2)
	pts := make([]Point, len(inst.DB))
	copy(pts, inst.DB)
	sx, err := BuildSharded(pts, 4, Options{Dimension: inst.D, Gamma: 2, Rounds: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, q := range inst.Queries {
		res, err := sx.QueryNear(q.X, 8)
		if err != nil {
			continue
		}
		if res.Rounds != 1 {
			t.Fatalf("near query used %d rounds, want 1 per shard (max)", res.Rounds)
		}
		isYes := q.NNDist <= 8
		if (res.Index >= 0) == isYes {
			agree++
		}
	}
	if agree < len(inst.Queries)*3/4 {
		t.Errorf("near decision agreed on %d/%d", agree, len(inst.Queries))
	}
}

func TestShardedSpaceRollup(t *testing.T) {
	inst := shardedTestInstance(t)
	pts := make([]Point, len(inst.DB))
	copy(pts, inst.DB)
	sx, err := BuildSharded(pts, 4, Options{Dimension: inst.D, Rounds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Materialize some cells.
	for _, q := range inst.Queries[:4] {
		sx.Query(q.X)
	}
	per := sx.ShardSpaces()
	if len(per) != 4 {
		t.Fatalf("ShardSpaces len %d", len(per))
	}
	total := sx.Space()
	sum, maxLog := 0, 0.0
	for _, sp := range per {
		sum += sp.MaterializedCells
		if sp.NominalLog2Cells > maxLog {
			maxLog = sp.NominalLog2Cells
		}
	}
	if total.MaterializedCells != sum {
		t.Errorf("materialized rollup %d, want sum %d", total.MaterializedCells, sum)
	}
	if total.NominalLog2Cells < maxLog || total.NominalLog2Cells > maxLog+2+1e-9 {
		t.Errorf("nominal log rollup %.2f outside [max=%.2f, max+log2(4)]", total.NominalLog2Cells, maxLog)
	}
}

func TestShardedBatchQueryContext(t *testing.T) {
	inst := shardedTestInstance(t)
	pts := make([]Point, len(inst.DB))
	copy(pts, inst.DB)
	sx, err := BuildSharded(pts, 2, Options{Dimension: inst.D, Rounds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]Point, len(inst.Queries))
	for i, q := range inst.Queries {
		xs[i] = q.X
	}

	out := sx.BatchQuery(xs, 4)
	if len(out) != len(xs) {
		t.Fatalf("batch len %d", len(out))
	}
	okBatch := 0
	for _, b := range out {
		if b.Err == nil {
			okBatch++
		}
	}
	if okBatch == 0 {
		t.Fatal("every batched sharded query failed")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out = sx.BatchQueryContext(ctx, xs, 4)
	for i, b := range out {
		if b.Err == nil {
			t.Fatalf("entry %d ran despite cancelled context", i)
		}
	}
}
