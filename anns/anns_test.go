package anns_test

import (
	"strings"
	"testing"

	"repro/anns"
	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func testPoints(t *testing.T, d, n int) []anns.Point {
	t.Helper()
	r := rng.New(1000)
	pts := make([]anns.Point, n)
	for i := range pts {
		pts[i] = hamming.Random(r, d)
	}
	return pts
}

func TestBuildValidation(t *testing.T) {
	pts := testPoints(t, 128, 10)
	cases := []struct {
		name string
		opts anns.Options
		pts  []anns.Point
	}{
		{"no dimension", anns.Options{}, pts},
		{"one point", anns.Options{Dimension: 128}, pts[:1]},
		{"bad gamma", anns.Options{Dimension: 128, Gamma: 1}, pts},
		{"bad rounds", anns.Options{Dimension: 128, Rounds: -1}, pts},
		{"soph k=1", anns.Options{Dimension: 128, Rounds: 1, Algorithm: anns.Sophisticated}, pts},
		{"bad reps", anns.Options{Dimension: 128, Repetitions: -2}, pts},
		{"wrong width", anns.Options{Dimension: 64}, pts},
	}
	for _, c := range cases {
		if _, err := anns.Build(c.pts, c.opts); err == nil {
			t.Errorf("%s: Build accepted invalid input", c.name)
		}
	}
}

func TestBuildAndQuery(t *testing.T) {
	d := 512
	pts := testPoints(t, d, 120)
	idx, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 120 {
		t.Error("Len")
	}
	r := rng.New(2000)
	ok := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		x := hamming.AtDistance(r, pts[trial], d, 15)
		res, err := idx.Query(x)
		if err != nil {
			continue
		}
		if res.Rounds > 3 {
			t.Fatalf("rounds %d", res.Rounds)
		}
		if res.Index < 0 || res.Index >= len(pts) {
			t.Fatalf("index %d", res.Index)
		}
		if res.Distance != bitvec.Distance(pts[res.Index], x) {
			t.Fatal("reported distance wrong")
		}
		if hamming.IsApproxNearest(pts, x, pts[res.Index], 2) {
			ok++
		}
	}
	if ok < trials*3/4 {
		t.Errorf("approx-correct %d/%d", ok, trials)
	}
}

func TestQueryNear(t *testing.T) {
	d := 512
	pts := testPoints(t, d, 120)
	idx, err := anns.Build(pts, anns.Options{Dimension: d, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3000)
	// YES case.
	x := hamming.AtDistance(r, pts[0], d, 6)
	res, err := idx.QueryNear(x, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probes != 1 || res.Rounds != 1 {
		t.Errorf("lambda accounting: %+v", res)
	}
	if res.Index >= 0 && res.Distance > 12 {
		t.Errorf("answer at distance %d > γλ", res.Distance)
	}
	// NO case: uniform point sits at ≈ d/2.
	far := hamming.Random(r, d)
	res, err = idx.QueryNear(far, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index >= 0 {
		t.Errorf("NO instance answered with point at distance %d", res.Distance)
	}
}

func TestSophisticatedAlgorithm(t *testing.T) {
	d := 512
	pts := testPoints(t, d, 120)
	idx, err := anns.Build(pts, anns.Options{
		Dimension: d, Rounds: 8, Algorithm: anns.Sophisticated, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4000)
	x := hamming.AtDistance(r, pts[3], d, 20)
	res, err := idx.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 8 {
		t.Errorf("rounds %d", res.Rounds)
	}
}

func TestRepetitions(t *testing.T) {
	d := 256
	pts := testPoints(t, d, 80)
	idx, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 2, Repetitions: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5000)
	x := hamming.AtDistance(r, pts[9], d, 12)
	res, err := idx.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds > 2 {
		t.Errorf("boosted rounds %d", res.Rounds)
	}
	if res.Probes < 3 {
		t.Errorf("boosted probes %d suspiciously few", res.Probes)
	}
}

func TestNewPointHelpers(t *testing.T) {
	p := anns.NewPoint([]bool{true, false, true})
	if !p.Get(0) || p.Get(1) || !p.Get(2) {
		t.Error("NewPoint bits wrong")
	}
	q, err := anns.NewPointFromBytes([]byte{0b101}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bitvec.Equal(p, q) {
		t.Error("byte and bool constructions disagree")
	}
	if _, err := anns.NewPointFromBytes([]byte{1}, 100); err == nil {
		t.Error("short byte slice accepted")
	}
}

func TestOptionsAccessor(t *testing.T) {
	pts := testPoints(t, 128, 20)
	idx, err := anns.Build(pts, anns.Options{Dimension: 128, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	o := idx.Options()
	if o.Gamma != 2 || o.Rounds != 2 || o.Repetitions != 1 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

func TestSpaceAccessor(t *testing.T) {
	pts := testPoints(t, 256, 40)
	idx, err := anns.Build(pts, anns.Options{Dimension: 256, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	before := idx.Space()
	if before.MaterializedCells != 0 {
		t.Errorf("fresh index materialized %d cells", before.MaterializedCells)
	}
	if before.NominalLog2Cells < 64 {
		t.Errorf("nominal log2 cells %v suspiciously small for a poly(n) table", before.NominalLog2Cells)
	}
	r := rng.New(8000)
	x := hamming.AtDistance(r, pts[0], 256, 10)
	if _, err := idx.Query(x); err != nil {
		t.Logf("query failed (within error budget): %v", err)
	}
	after := idx.Space()
	if after.MaterializedCells == 0 {
		t.Error("query materialized no cells")
	}
	if after.NominalLog2Cells != before.NominalLog2Cells {
		t.Error("nominal size changed with queries")
	}
}

func TestQueryFailureMessage(t *testing.T) {
	// Whatever happens, errors must carry the package prefix.
	pts := testPoints(t, 128, 20)
	idx, err := anns.Build(pts, anns.Options{Dimension: 128, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6000)
	for trial := 0; trial < 50; trial++ {
		x := hamming.Random(r, 128)
		if _, err := idx.Query(x); err != nil {
			if !strings.Contains(err.Error(), "anns:") {
				t.Errorf("error without prefix: %v", err)
			}
		}
	}
}
