//go:build race

package anns

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = true
