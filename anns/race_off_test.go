//go:build !race

package anns

// raceEnabled reports whether the race detector instruments this build.
// Allocation-ceiling tests skip under -race: instrumentation adds heap
// allocations that are not present in production builds.
const raceEnabled = false
