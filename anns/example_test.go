package anns_test

import (
	"fmt"
	"log"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
)

// ExampleBuild shows the basic build/query flow with deterministic output.
func ExampleBuild() {
	const d = 256
	r := rng.New(5)
	points := make([]anns.Point, 100)
	for i := range points {
		points[i] = hamming.Random(r, d)
	}
	query := hamming.Random(r, d)
	points[42] = hamming.AtDistance(r, query, d, 10) // planted neighbor

	idx, err := anns.Build(points, anns.Options{Dimension: d, Rounds: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := idx.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found point %d at distance %d within %d rounds\n",
		res.Index, res.Distance, res.Rounds)
	// Output: found point 42 at distance 10 within 2 rounds
}

// ExampleIndex_QueryNear demonstrates the 1-probe λ-near-neighbor answer.
func ExampleIndex_QueryNear() {
	const d = 256
	r := rng.New(6)
	points := make([]anns.Point, 100)
	for i := range points {
		points[i] = hamming.Random(r, d)
	}
	query := hamming.AtDistance(r, points[7], d, 5)

	idx, err := anns.Build(points, anns.Options{Dimension: d, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	res, err := idx.QueryNear(query, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probes=%d found=%v within gamma*lambda=%v\n",
		res.Probes, res.Index >= 0, res.Distance <= 10)
	// Output: probes=1 found=true within gamma*lambda=true
}
