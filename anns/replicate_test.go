package anns_test

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/segment"
)

// replStream is a deterministic mutation stream: k inserts interleaved
// with deletes of earlier IDs, as segment.Ops carrying the IDs a primary
// starting at nextID=base would assign.
func replStream(d, base, k int) []segment.Op {
	r := rng.New(0xBEEF)
	ops := make([]segment.Op, 0, k)
	next := uint64(base)
	for len(ops) < k {
		if next > uint64(base)+2 && r.Intn(4) == 0 {
			ops = append(ops, segment.Op{Kind: segment.OpDelete, ID: uint64(base) + uint64(r.Intn(int(next)-base))})
			continue
		}
		ops = append(ops, segment.Op{Kind: segment.OpInsert, ID: next, Point: hamming.Random(r, d)})
		next++
	}
	return ops
}

// applyDirect drives the stream through the primary's client surface
// (Insert/Delete), returning the ops that actually changed state (a
// delete of an already-dead ID is not logged and gains no offset) — the
// exact frame sequence a router would relay.
func applyDirect(t *testing.T, mx *anns.MutableIndex, ops []segment.Op) []segment.Op {
	t.Helper()
	var applied []segment.Op
	for _, op := range ops {
		switch op.Kind {
		case segment.OpInsert:
			id, err := mx.Insert(op.Point)
			if err != nil {
				t.Fatalf("insert: %v", err)
			}
			if id != op.ID {
				t.Fatalf("insert assigned id %d, stream expected %d", id, op.ID)
			}
			applied = append(applied, op)
		case segment.OpDelete:
			live, err := mx.Delete(op.ID)
			if err != nil {
				t.Fatalf("delete %d: %v", op.ID, err)
			}
			if live {
				applied = append(applied, op)
			}
		}
	}
	return applied
}

// TestApplyReplicatedMatchesPrimary is the replication core claim: a
// replica fed the primary's frames in order reaches byte-identical
// state — same offsets, same live count, same query results and
// accounting — because frame application IS the mutation path.
// Duplicate delivery is a no-op and a sequence gap is a typed error
// that applies nothing.
func TestApplyReplicatedMatchesPrimary(t *testing.T) {
	const d, n = 128, 40
	pts := testPoints(t, d, n)
	opts := anns.Options{Dimension: d, Rounds: 2, Seed: 7}
	build := func() *anns.Index {
		cp := make([]anns.Point, len(pts))
		copy(cp, pts)
		ix, err := anns.Build(cp, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	cfg := anns.MutableConfig{MemtableCap: 8, CompactEvery: 3}
	primary := newMutable(t, build(), cfg)
	replica := newMutable(t, build(), cfg)

	applied := applyDirect(t, primary, replStream(d, n, 30))
	if got := primary.ReplicationOffset(); got != uint64(len(applied)) {
		t.Fatalf("primary offset %d, want %d applied mutations", got, len(applied))
	}

	// A frame from the future: gap error, nothing applied.
	if err := replica.ApplyReplicated(2, applied[1]); !errors.Is(err, anns.ErrReplicationGap) {
		t.Fatalf("gap frame: got %v, want ErrReplicationGap", err)
	}
	if replica.ReplicationOffset() != 0 {
		t.Fatal("gap frame must not change the offset")
	}

	for i, op := range applied {
		seq := uint64(i + 1)
		if err := replica.ApplyReplicated(seq, op); err != nil {
			t.Fatalf("frame %d: %v", seq, err)
		}
		// Duplicate delivery (a relay retry) is idempotent.
		if err := replica.ApplyReplicated(seq, op); err != nil {
			t.Fatalf("duplicate frame %d: %v", seq, err)
		}
	}
	if p, r := primary.ReplicationOffset(), replica.ReplicationOffset(); p != r {
		t.Fatalf("offsets diverged: primary %d, replica %d", p, r)
	}
	if p, r := primary.Len(), replica.Len(); p != r {
		t.Fatalf("live counts diverged: primary %d, replica %d", p, r)
	}

	qr := rng.New(3)
	for trial := 0; trial < 30; trial++ {
		x := hamming.Random(qr, d)
		pr, perr := primary.Query(x)
		rr, rerr := replica.Query(x)
		if (perr == nil) != (rerr == nil) || pr != rr {
			t.Fatalf("query %d diverged: primary %+v (%v), replica %+v (%v)", trial, pr, perr, rr, rerr)
		}
	}

	// Divergence detection: an insert that does not continue the replica's
	// ID sequence is an error, never a silent repair.
	bad := segment.Op{Kind: segment.OpInsert, ID: 9999, Point: hamming.Random(qr, d)}
	if err := replica.ApplyReplicated(replica.ReplicationOffset()+1, bad); err == nil {
		t.Fatal("diverged insert ID must be rejected")
	}
}

// TestWALFramesMidStreamJoin covers the catch-up path: a replica joining
// at offset k is fed the primary's WAL frames from k and converges, and
// a torn tail on the replica's own WAL (its crash artifact) replays to
// the pre-tear offset and catches up cleanly from there.
func TestWALFramesMidStreamJoin(t *testing.T) {
	const d, n = 128, 40
	dir := t.TempDir()
	pts := testPoints(t, d, n)
	opts := anns.Options{Dimension: d, Rounds: 2, Seed: 7}
	build := func() *anns.Index {
		cp := make([]anns.Point, len(pts))
		copy(cp, pts)
		ix, err := anns.Build(cp, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	pcfg := anns.MutableConfig{MemtableCap: 8, WALPath: filepath.Join(dir, "primary.wal")}
	primary := newMutable(t, build(), pcfg)
	applied := applyDirect(t, primary, replStream(d, n, 24))
	total := uint64(len(applied))

	// Join mid-stream: the replica applies the first half from a relay,
	// then fetches the rest from the primary's WAL at its own offset.
	rwal := filepath.Join(dir, "replica.wal")
	rcfg := anns.MutableConfig{MemtableCap: 8, WALPath: rwal}
	replica := newMutable(t, build(), rcfg)
	half := total / 2
	for i := uint64(0); i < half; i++ {
		if err := replica.ApplyReplicated(i+1, applied[i]); err != nil {
			t.Fatalf("frame %d: %v", i+1, err)
		}
	}

	catchUp := func(rep *anns.MutableIndex) {
		t.Helper()
		from := rep.ReplicationOffset()
		blob, cnt, err := primary.WALFrames(from, 0)
		if err != nil {
			t.Fatalf("WALFrames(%d): %v", from, err)
		}
		if uint64(cnt) != total-from {
			t.Fatalf("WALFrames(%d) returned %d frames, want %d", from, cnt, total-from)
		}
		ops, err := segment.DecodeFrames(blob, d)
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range ops {
			if err := rep.ApplyReplicated(from+uint64(i)+1, op); err != nil {
				t.Fatalf("catch-up frame %d: %v", from+uint64(i)+1, err)
			}
		}
	}
	catchUp(replica)
	if replica.ReplicationOffset() != total {
		t.Fatalf("replica offset %d after catch-up, want %d", replica.ReplicationOffset(), total)
	}

	// Crash the replica with an in-flight append artifact on its WAL:
	// reboot replays everything intact, truncates the tear, and reports
	// the offset the catch-up should resume from.
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}
	if err := segment.AppendTornFrame(rwal); err != nil {
		t.Fatal(err)
	}
	rebooted := newMutable(t, build(), rcfg)
	if got := rebooted.ReplicationOffset(); got != total {
		t.Fatalf("rebooted replica offset %d, want %d", got, total)
	}

	// Late joiner from zero: pure WAL-feed convergence.
	late := newMutable(t, build(), anns.MutableConfig{MemtableCap: 8})
	catchUp(late)

	qr := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		x := hamming.Random(qr, d)
		want, werr := primary.Query(x)
		for name, rep := range map[string]*anns.MutableIndex{"rebooted": rebooted, "late": late} {
			got, gerr := rep.Query(x)
			if (werr == nil) != (gerr == nil) || want != got {
				t.Fatalf("%s query %d diverged: %+v (%v) vs %+v (%v)", name, trial, want, werr, got, gerr)
			}
		}
	}
}

// TestMutableShardedMatchesReplicaSet pins the oracle the routed cluster
// is compared against: MutableSharded's global ID assignment follows the
// round-robin formula, and its folded answers are byte-identical to an
// independently assembled replica set (one MutableIndex per shard fed
// frames in routed order) merged with the same RoundRobinGlobal fold.
func TestMutableShardedMatchesReplicaSet(t *testing.T) {
	const d, n, S = 128, 40, 2
	pts := testPoints(t, d, n)
	opts := anns.Options{Dimension: d, Rounds: 2, Seed: 11}
	cfg := anns.MutableConfig{MemtableCap: 8, CompactEvery: 3, Synchronous: true}

	cp := make([]anns.Point, len(pts))
	copy(cp, pts)
	ms, err := anns.BuildMutableSharded(cp, S, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	// The replica set: the same shard bases (BuildSharded is
	// deterministic), each wrapped in its own mutable tier.
	cp2 := make([]anns.Point, len(pts))
	copy(cp2, pts)
	sx, err := anns.BuildSharded(cp2, S, opts)
	if err != nil {
		t.Fatal(err)
	}
	replicas := make([]*anns.MutableIndex, S)
	seqs := make([]uint64, S)
	for s := 0; s < S; s++ {
		replicas[s] = newMutable(t, sx.Shard(s), anns.MutableConfig{MemtableCap: 8, CompactEvery: 3})
	}

	r := rng.New(0xD1CE)
	nextGlobal := uint64(n)
	for i := 0; i < 30; i++ {
		if nextGlobal > uint64(n)+2 && r.Intn(4) == 0 {
			g := uint64(r.Intn(int(nextGlobal)))
			wantLive, err := ms.Delete(g)
			if err != nil {
				t.Fatalf("sharded delete %d: %v", g, err)
			}
			if wantLive {
				seqs[g%S]++
				if err := replicas[g%S].ApplyReplicated(seqs[g%S], segment.Op{Kind: segment.OpDelete, ID: g / S}); err != nil {
					t.Fatalf("replica delete frame: %v", err)
				}
			}
			continue
		}
		p := hamming.Random(r, d)
		g, err := ms.Insert(p)
		if err != nil {
			t.Fatalf("sharded insert: %v", err)
		}
		if g != nextGlobal {
			t.Fatalf("sharded insert assigned global %d, want %d", g, nextGlobal)
		}
		s := g % S
		seqs[s]++
		if err := replicas[s].ApplyReplicated(seqs[s], segment.Op{Kind: segment.OpInsert, ID: g / S, Point: p}); err != nil {
			t.Fatalf("replica insert frame: %v", err)
		}
		nextGlobal++
	}

	global := anns.RoundRobinGlobal(S)
	qr := rng.New(17)
	for trial := 0; trial < 30; trial++ {
		x := hamming.Random(qr, d)
		want, werr := ms.Query(x)
		replies := make([]anns.ShardReply, S)
		for s := 0; s < S; s++ {
			res, err := replicas[s].Query(x)
			replies[s] = anns.ShardReply{Result: res, OK: err == nil}
		}
		got := anns.MergeShardReplies(replies, func(s, local int) int { return global(s, local) })
		if werr != nil {
			continue
		}
		if want != got {
			t.Fatalf("query %d: MutableSharded %+v, replica-set fold %+v", trial, want, got)
		}
	}
}
