package anns

import (
	"testing"

	"repro/internal/hamming"
	"repro/internal/rng"
)

// Steady-state allocation ceilings of the zero-allocation query engine.
// The single-index paths run on pooled query contexts and binary cell
// addresses, so after the lazy cells and sketches are warmed a query
// performs no heap allocation at all; the sharded fan-out pays only for
// its per-shard goroutines. These tests pin those ceilings so an
// accidental reintroduction of per-probe allocation fails CI
// (run explicitly: GOFLAGS=-count=1 go test -run TestAllocs ./anns).

const (
	// allocCeilingQuery bounds Index.Query and Index.QueryNear: the warm
	// path allocates nothing; 1.5 tolerates a stray pool refill under GC.
	allocCeilingQuery = 1.5
	// allocCeilingSharded bounds the ShardedIndex merge path: one
	// goroutine spawn per shard (4 here) plus the wait-group round trip.
	// Everything else — per-shard contexts, result slots — is pooled.
	allocCeilingSharded = 24
)

// skipIfRace skips allocation-ceiling tests under the race detector,
// whose instrumentation allocates on paths that are free in production.
func skipIfRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation ceilings are measured without -race instrumentation")
	}
}

func allocFixture(t *testing.T, n, d int, shards int) (*Index, *ShardedIndex, []Point) {
	t.Helper()
	r := rng.New(71)
	db := make([]Point, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	queries := make([]Point, 16)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, db[i], d, d/16)
	}
	ix, err := Build(db, Options{Dimension: d, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := BuildSharded(db, shards, Options{Dimension: d, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	return ix, sx, queries
}

func TestAllocsQuery(t *testing.T) {
	skipIfRace(t)
	ix, _, queries := allocFixture(t, 128, 256, 4)
	for _, q := range queries { // warm lazy cells, sketches, pooled ctxs
		ix.Query(q)
	}
	i := 0
	got := testing.AllocsPerRun(100, func() {
		ix.Query(queries[i%len(queries)])
		i++
	})
	if got > allocCeilingQuery {
		t.Errorf("Index.Query allocates %.1f/op at steady state, ceiling %v",
			got, allocCeilingQuery)
	}
}

func TestAllocsQueryNear(t *testing.T) {
	skipIfRace(t)
	ix, _, queries := allocFixture(t, 128, 256, 4)
	for _, q := range queries {
		ix.QueryNear(q, 16)
	}
	i := 0
	got := testing.AllocsPerRun(100, func() {
		ix.QueryNear(queries[i%len(queries)], 16)
		i++
	})
	if got > allocCeilingQuery {
		t.Errorf("Index.QueryNear allocates %.1f/op at steady state, ceiling %v",
			got, allocCeilingQuery)
	}
}

func TestAllocsShardedMerge(t *testing.T) {
	skipIfRace(t)
	_, sx, queries := allocFixture(t, 128, 256, 4)
	for _, q := range queries {
		sx.Query(q)
	}
	i := 0
	got := testing.AllocsPerRun(100, func() {
		sx.Query(queries[i%len(queries)])
		i++
	})
	if got > allocCeilingSharded {
		t.Errorf("ShardedIndex.Query allocates %.1f/op at steady state, ceiling %v",
			got, allocCeilingSharded)
	}
}

// TestAllocsBuildScalesWithLevelsNotPoints pins the flat-storage build
// contract: preprocessing allocates per level (matrices, sketch blocks,
// oracles), never per database point. The membership tables used to key
// a map[string]int on packed-byte strings — two allocations per point —
// so a regression back to per-entry keys makes the large build's count
// diverge from the small one's by hundreds and fails the delta ceiling.
func TestAllocsBuildScalesWithLevelsNotPoints(t *testing.T) {
	skipIfRace(t)
	const d = 128
	buildAllocs := func(n int) float64 {
		r := rng.New(uint64(n))
		db := make([]Point, n)
		for i := range db {
			db[i] = hamming.Random(r, d)
		}
		// BuildWorkers 1 keeps the count deterministic (no goroutine spawns).
		return testing.AllocsPerRun(3, func() {
			if _, err := Build(db, Options{Dimension: d, Rounds: 2, BuildWorkers: 1}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := buildAllocs(128)
	large := buildAllocs(512)
	// 4x the points must cost O(1) extra allocations (slice-header views
	// aside, which AllocsPerRun already charges to both sides equally).
	const ceiling = 16
	if large-small > ceiling {
		t.Errorf("Build(n=512) allocates %.0f more than Build(n=128) (ceiling %d): per-point allocation crept back in",
			large-small, ceiling)
	}
}

// TestAllocsScratchReuse pins the per-worker reuse contract: a held
// Scratch makes repeated queries allocation-free without touching the
// shared pool at all.
func TestAllocsScratchReuse(t *testing.T) {
	skipIfRace(t)
	ix, _, queries := allocFixture(t, 128, 256, 4)
	sc := NewScratch()
	for _, q := range queries {
		ix.QueryScratch(q, sc)
	}
	i := 0
	got := testing.AllocsPerRun(100, func() {
		ix.QueryScratch(queries[i%len(queries)], sc)
		i++
	})
	if got > allocCeilingQuery {
		t.Errorf("Index.QueryScratch allocates %.1f/op at steady state, ceiling %v",
			got, allocCeilingQuery)
	}
}
