package anns

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// loadTestCorpus builds a fixed-seed database and 1000 query points, half
// planted near database points, half uniform.
func loadTestCorpus(t testing.TB, n, d int, seed uint64) ([]Point, []Point) {
	t.Helper()
	r := rng.New(seed)
	db := make([]Point, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	queries := make([]Point, 1000)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = hamming.AtDistance(r, db[i%n], d, 1+i%(d/4))
		} else {
			queries[i] = hamming.Random(r, d)
		}
	}
	return db, queries
}

func saveToFile(t *testing.T, save func(f *os.File) error, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// sameLoadedResult pins the full per-query outcome — answer and
// cell-probe accounting — across load paths.
func sameLoadedResult(t *testing.T, label string, i int, a, b Result) {
	t.Helper()
	if a != b {
		t.Fatalf("%s: query %d diverged:\n heap: %+v\n mmap: %+v", label, i, a, b)
	}
}

// TestOpenSnapshotEquivalence is the acceptance gate for the zero-copy
// path: 1000 fixed-seed queries must answer byte-identically (results,
// Rounds, Probes) between a heap-loaded and an mmap-loaded index, for the
// single, boosted, and sharded kinds.
func TestOpenSnapshotEquivalence(t *testing.T) {
	db, queries := loadTestCorpus(t, 96, 128, 1234)
	cases := []struct {
		name  string
		save  func(f *os.File) error
		check func(t *testing.T, heap, mmap *Loaded)
	}{
		{
			name: "single",
			save: func(f *os.File) error {
				ix, err := Build(db, Options{Dimension: 128, Rounds: 2, Seed: 9})
				if err != nil {
					return err
				}
				return SaveIndex(f, ix)
			},
			check: func(t *testing.T, heap, mmap *Loaded) {
				for i, q := range queries {
					rh, errh := heap.Index.Query(q)
					rm, errm := mmap.Index.Query(q)
					if (errh == nil) != (errm == nil) {
						t.Fatalf("query %d: error mismatch: %v vs %v", i, errh, errm)
					}
					sameLoadedResult(t, "single", i, rh, rm)
				}
			},
		},
		{
			name: "boosted",
			save: func(f *os.File) error {
				ix, err := Build(db, Options{Dimension: 128, Rounds: 2, Repetitions: 3, Seed: 10})
				if err != nil {
					return err
				}
				return SaveIndex(f, ix)
			},
			check: func(t *testing.T, heap, mmap *Loaded) {
				for i, q := range queries {
					rh, _ := heap.Index.Query(q)
					rm, _ := mmap.Index.Query(q)
					sameLoadedResult(t, "boosted", i, rh, rm)
				}
			},
		},
		{
			name: "sharded",
			save: func(f *os.File) error {
				sx, err := BuildSharded(db, 3, Options{Dimension: 128, Rounds: 2, Seed: 11})
				if err != nil {
					return err
				}
				return SaveSharded(f, sx)
			},
			check: func(t *testing.T, heap, mmap *Loaded) {
				for i, q := range queries {
					rh, _ := heap.Sharded.Query(q)
					rm, _ := mmap.Sharded.Query(q)
					sameLoadedResult(t, "sharded", i, rh, rm)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := saveToFile(t, tc.save, tc.name+".snap")
			heap, err := OpenSnapshot(path, LoadHeap)
			if err != nil {
				t.Fatalf("heap open: %v", err)
			}
			defer heap.Close()
			mm, err := OpenSnapshot(path, LoadMmap)
			if err != nil {
				if errors.Is(err, snapshot.ErrMmapUnavailable) {
					t.Skip("mmap unavailable on this platform")
				}
				t.Fatalf("mmap open: %v", err)
			}
			defer mm.Close()
			if heap.Source != "heap" || mm.Source != "mmap" {
				t.Fatalf("sources = %q / %q", heap.Source, mm.Source)
			}
			if mm.MappedBytes <= 0 {
				t.Fatalf("MappedBytes = %d", mm.MappedBytes)
			}
			if err := mm.VerifyChecksum(); err != nil {
				t.Fatalf("VerifyChecksum: %v", err)
			}
			tc.check(t, heap, mm)
		})
	}
}

// TestOpenSnapshotAutoFallback forces MapFile to fail: LoadAuto must land
// on the heap decoder with a typed reason rather than failing, and
// LoadMmap must surface the typed error.
func TestOpenSnapshotAutoFallback(t *testing.T) {
	db, queries := loadTestCorpus(t, 48, 96, 77)
	path := saveToFile(t, func(f *os.File) error {
		ix, err := Build(db, Options{Dimension: 96, Rounds: 2, Seed: 5})
		if err != nil {
			return err
		}
		return SaveIndex(f, ix)
	}, "auto.snap")

	snapshot.SetMmapUnavailableForTest(true)
	defer snapshot.SetMmapUnavailableForTest(false)

	l, err := OpenSnapshot(path, LoadAuto)
	if err != nil {
		t.Fatalf("LoadAuto with mmap unavailable: %v", err)
	}
	defer l.Close()
	if l.Source != "heap" {
		t.Fatalf("Source = %q, want heap", l.Source)
	}
	if l.FallbackReason == "" {
		t.Fatal("fallback left no reason")
	}
	if l.MappedBytes != 0 {
		t.Fatalf("MappedBytes = %d on the heap path", l.MappedBytes)
	}
	if _, err := l.Index.Query(queries[0]); err != nil {
		t.Fatalf("fallback index does not serve: %v", err)
	}

	if _, err := OpenSnapshot(path, LoadMmap); !errors.Is(err, snapshot.ErrMmapUnavailable) {
		t.Fatalf("LoadMmap error = %v, want ErrMmapUnavailable", err)
	}
}

// TestOpenSnapshotAutoPrefersMmap pins that auto mode takes the zero-copy
// path when nothing is in the way.
func TestOpenSnapshotAutoPrefersMmap(t *testing.T) {
	db, _ := loadTestCorpus(t, 48, 96, 78)
	path := saveToFile(t, func(f *os.File) error {
		ix, err := Build(db, Options{Dimension: 96, Rounds: 2, Seed: 6})
		if err != nil {
			return err
		}
		return SaveIndex(f, ix)
	}, "auto2.snap")
	l, err := OpenSnapshot(path, LoadAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Source != "mmap" && l.FallbackReason == "" {
		t.Fatalf("auto mode took %q with no recorded reason", l.Source)
	}
}

// TestOpenSnapshotRejectsCorruptionOnBothPaths: decode errors are not
// fallback cases — a structurally corrupt file fails under LoadAuto too.
func TestOpenSnapshotRejectsCorruption(t *testing.T) {
	db, _ := loadTestCorpus(t, 48, 96, 79)
	path := saveToFile(t, func(f *os.File) error {
		ix, err := Build(db, Options{Dimension: 96, Rounds: 2, Seed: 7})
		if err != nil {
			return err
		}
		return SaveIndex(f, ix)
	}, "corrupt.snap")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The envelope dimension u64 sits at bytes 16..24; blowing its high
	// byte past maxDim trips structural validation on both decode paths
	// (payload-only corruption is deliberately left to VerifyChecksum on
	// the mmap path — see snapshot.ByteDecoder).
	raw[23] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []LoadMode{LoadAuto, LoadHeap, LoadMmap} {
		if _, err := OpenSnapshot(path, mode); err == nil {
			t.Fatalf("mode %v opened a corrupt snapshot", mode)
		}
	}
}

// TestOpenSnapshotMutableRejected points mutable snapshots at their own
// loader on every mode.
func TestOpenSnapshotMutableRejected(t *testing.T) {
	mx, err := NewMutable(nil, MutableConfig{Options: Options{Dimension: 96, Rounds: 2, Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for i := 0; i < 8; i++ {
		if _, err := mx.Insert(hamming.Random(r, 96)); err != nil {
			t.Fatal(err)
		}
	}
	path := saveToFile(t, func(f *os.File) error { return SaveMutable(f, mx) }, "mut.snap")
	for _, mode := range []LoadMode{LoadAuto, LoadHeap, LoadMmap} {
		if _, err := OpenSnapshot(path, mode); err == nil {
			t.Fatalf("mode %v opened a mutable snapshot via OpenSnapshot", mode)
		}
	}
}
