package anns

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// Snapshot support: SaveIndex/LoadIndex and SaveSharded/LoadSharded
// round-trip a built index through the versioned, checksummed binary
// format of internal/snapshot ("build once, serve anywhere"). The
// payload is the index's flat storage written wholesale, so loading is a
// sequential read plus a cheap membership-key rebuild — no sketching, no
// matrix drawing — and the loaded index answers every query with results
// and probe accounting byte-identical to the index it was saved from.

// envelope converts the public Options to the format layer's mirror.
func envelope(opts Options) snapshot.IndexOptions {
	return snapshot.IndexOptions{
		Dimension:      opts.Dimension,
		Gamma:          opts.Gamma,
		Rounds:         opts.Rounds,
		Algorithm:      int(opts.Algorithm),
		Repetitions:    opts.Repetitions,
		Seed:           opts.Seed,
		RowsMultiplier: opts.RowsMultiplier,
	}
}

func unenvelope(o snapshot.IndexOptions) Options {
	return Options{
		Dimension:      o.Dimension,
		Gamma:          o.Gamma,
		Rounds:         o.Rounds,
		Algorithm:      Algorithm(o.Algorithm),
		Repetitions:    o.Repetitions,
		Seed:           o.Seed,
		RowsMultiplier: o.RowsMultiplier,
	}
}

// SaveIndex writes a snapshot of ix to w: the serving options plus one
// core-index body per boosted repetition.
func SaveIndex(w io.Writer, ix *Index) error {
	e := snapshot.NewEncoder(w, snapshot.KindIndex)
	encodeIndexBody(e, ix)
	return e.Close()
}

func encodeIndexBody(e *snapshot.Encoder, ix *Index) {
	snapshot.EncodeIndexOptions(e, envelope(ix.opts))
	for _, ci := range ix.coreIndexes() {
		snapshot.EncodeCore(e, ci)
	}
}

// LoadIndex reads an Index snapshot from r. The checksum is verified
// before the index is handed out.
func LoadIndex(r io.Reader) (*Index, error) {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	if d.Kind() != snapshot.KindIndex {
		return nil, fmt.Errorf("%w: kind %q is not an index snapshot",
			snapshot.ErrFormat, snapshot.KindName(d.Kind()))
	}
	ix, err := decodeIndexBody(d)
	if err != nil {
		return nil, err
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return ix, nil
}

func decodeIndexBody(d snapshot.Decoder) (*Index, error) {
	env, err := snapshot.DecodeIndexOptions(d)
	if err != nil {
		return nil, err
	}
	opts := unenvelope(env)
	return decodeIndexCores(d, opts)
}

// decodeIndexCores reads opts.Repetitions core bodies and reassembles the
// scheme stack exactly as Build would have.
func decodeIndexCores(d snapshot.Decoder, opts Options) (*Index, error) {
	schemes := make([]core.Scheme, opts.Repetitions)
	indexes := make([]*core.Index, opts.Repetitions)
	for i := range indexes {
		ci, err := snapshot.DecodeCore(d)
		if err != nil {
			return nil, fmt.Errorf("repetition %d: %w", i, err)
		}
		if ci.D != opts.Dimension {
			return nil, fmt.Errorf("%w: repetition %d has dimension %d, envelope says %d",
				snapshot.ErrFormat, i, ci.D, opts.Dimension)
		}
		indexes[i] = ci
		schemes[i] = newScheme(ci, opts)
	}
	out := &Index{opts: opts}
	if opts.Repetitions == 1 {
		out.scheme = schemes[0].(core.CtxScheme)
	} else {
		out.scheme = core.NewBoostedOver(schemes, indexes)
	}
	out.lambda = core.NewLambda(indexes[0])
	out.coreIndex = indexes[0]
	return out, nil
}

// SaveSharded writes a snapshot of sx: the logical options, the shard
// partition, and one embedded index body per shard.
func SaveSharded(w io.Writer, sx *ShardedIndex) error {
	e := snapshot.NewEncoder(w, snapshot.KindSharded)
	snapshot.EncodeIndexOptions(e, envelope(sx.opts))
	e.U64(uint64(len(sx.shards)))
	e.U64(uint64(sx.n))
	for s, shard := range sx.shards {
		e.U64(shard.opts.Seed)
		e.U64(uint64(len(sx.global[s])))
		e.Words(sx.global[s])
		for _, ci := range shard.coreIndexes() {
			snapshot.EncodeCore(e, ci)
		}
	}
	return e.Close()
}

// LoadSharded reads a ShardedIndex snapshot from r.
func LoadSharded(r io.Reader) (*ShardedIndex, error) {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	if d.Kind() != snapshot.KindSharded {
		return nil, fmt.Errorf("%w: kind %q is not a sharded-index snapshot",
			snapshot.ErrFormat, snapshot.KindName(d.Kind()))
	}
	sx, err := decodeShardedBody(d)
	if err != nil {
		return nil, err
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return sx, nil
}

func decodeShardedBody(d snapshot.Decoder) (*ShardedIndex, error) {
	env, err := snapshot.DecodeIndexOptions(d)
	if err != nil {
		return nil, err
	}
	opts := unenvelope(env)
	shards := int(d.U64())
	n := int(d.U64())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if shards < 1 || n < 2*shards {
		return nil, fmt.Errorf("%w: implausible shard header (shards=%d n=%d)", snapshot.ErrFormat, shards, n)
	}
	sx := &ShardedIndex{
		opts:   opts,
		shards: make([]*Index, shards),
		global: make([][]uint64, shards),
		n:      n,
	}
	sx.globalFn = func(s, j int) int { return int(sx.global[s][j]) }
	total := 0
	for s := 0; s < shards; s++ {
		shardSeed := d.U64()
		members := int(d.U64())
		if err := d.Err(); err != nil {
			return nil, err
		}
		if members < 2 || members > n {
			return nil, fmt.Errorf("%w: shard %d claims %d members of %d points", snapshot.ErrFormat, s, members, n)
		}
		// The mapping is served directly from the decoder's view — on the
		// mmap path that is the file's own words, borrowed read-only, so
		// validate without writing.
		globals := d.WordsView(uint64(members))
		if err := d.Err(); err != nil {
			return nil, err
		}
		for j, g := range globals {
			if g >= uint64(n) {
				return nil, fmt.Errorf("%w: shard %d maps local point %d to global %d of %d",
					snapshot.ErrFormat, s, j, g, n)
			}
		}
		sx.global[s] = globals
		total += members
		shardOpts := opts
		shardOpts.Seed = shardSeed
		shard, err := decodeIndexCores(d, shardOpts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if shard.Len() != members {
			return nil, fmt.Errorf("%w: shard %d holds %d points but maps %d",
				snapshot.ErrFormat, s, shard.Len(), members)
		}
		sx.shards[s] = shard
	}
	if total != n {
		return nil, fmt.Errorf("%w: shard members sum to %d, header says %d", snapshot.ErrFormat, total, n)
	}
	return sx, nil
}

// LoadAny reads a snapshot of either serving kind: exactly one of the
// returned indexes is non-nil. Bare core-index snapshots (annsctl's
// KindCore) are not servable and are rejected here.
func LoadAny(r io.Reader) (*Index, *ShardedIndex, error) {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, nil, err
	}
	switch d.Kind() {
	case snapshot.KindIndex:
		ix, err := decodeIndexBody(d)
		if err == nil {
			err = d.Close()
		}
		if err != nil {
			return nil, nil, err
		}
		return ix, nil, nil
	case snapshot.KindSharded:
		sx, err := decodeShardedBody(d)
		if err == nil {
			err = d.Close()
		}
		if err != nil {
			return nil, nil, err
		}
		return nil, sx, nil
	case snapshot.KindMutable:
		return nil, nil, fmt.Errorf("%w: snapshot kind %q needs the mutable tier (LoadMutable / annsd -mutable)",
			snapshot.ErrFormat, snapshot.KindName(d.Kind()))
	default:
		return nil, nil, fmt.Errorf("%w: snapshot kind %q is not servable",
			snapshot.ErrFormat, snapshot.KindName(d.Kind()))
	}
}
