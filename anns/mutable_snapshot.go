package anns

import (
	"fmt"
	"io"

	"repro/internal/bitvec"
	"repro/internal/segment"
	"repro/internal/snapshot"
)

// KindMutable snapshots capture the mutable tier's full state — the
// rebuilt base with its ID mapping, every sealed segment (as an embedded
// index body when built, raw points otherwise), the memtable, and the
// live tombstone set — so a reboot is LoadMutable + WAL replay. The byte
// layout is documented (and independently walked by Inspect) in
// internal/snapshot/mutable.go; TestInspectMutable pins the two against
// each other.

// SaveMutable writes a snapshot of the tier's current state to w.
func SaveMutable(w io.Writer, mx *MutableIndex) error {
	mx.mu.RLock()
	defer mx.mu.RUnlock()
	return mx.saveLocked(w)
}

// saveLocked encodes the tier under a held lock (persist holds the write
// lock so the WAL truncation that follows observes the same state).
func (mx *MutableIndex) saveLocked(w io.Writer) error {
	e := snapshot.NewEncoder(w, snapshot.KindMutable)
	snapshot.EncodeIndexOptions(e, envelope(mx.opts))
	e.U64(mx.nextID)
	e.U64(mx.segSeq)
	e.U64(mx.epoch)
	if mx.base != nil {
		e.U64(1)
		n := mx.base.Len()
		e.U64(uint64(n))
		ids := mx.baseIDs
		if ids == nil {
			ids = make([]uint64, n)
			for j := range ids {
				ids[j] = uint64(j)
			}
		}
		e.Words(ids)
		encodeIndexBody(e, mx.base)
	} else {
		e.U64(0)
	}
	e.U64(uint64(len(mx.segs)))
	for _, seg := range mx.segs {
		e.U64(seg.seq)
		e.U64(uint64(seg.mem.Len()))
		e.Words(seg.mem.IDs())
		if ix := seg.idx.Load(); ix != nil {
			e.U64(1)
			encodeIndexBody(e, ix)
		} else {
			e.U64(0)
			for _, p := range seg.mem.Points() {
				e.Words(p)
			}
		}
	}
	e.U64(uint64(mx.mem.Len()))
	e.Words(mx.mem.IDs())
	for _, p := range mx.mem.Points() {
		e.Words(p)
	}
	tombs := make([]uint64, 0, mx.tomb.Len())
	mx.tomb.Each(func(id uint64) { tombs = append(tombs, id) })
	e.U64(uint64(len(tombs)))
	e.Words(tombs)
	return e.Close()
}

// decodeIDs reads a validated count-prefixed ID array.
func decodeIDs(d snapshot.Decoder, count uint64, nextID uint64, what string) ([]uint64, error) {
	if count > nextID {
		return nil, fmt.Errorf("%w: %s claims %d ids under next-id %d",
			snapshot.ErrFormat, what, count, nextID)
	}
	ids := make([]uint64, count)
	d.WordsInto(ids)
	if err := d.Err(); err != nil {
		return nil, err
	}
	for j, id := range ids {
		if id >= nextID {
			return nil, fmt.Errorf("%w: %s id %d at %d exceeds next-id %d",
				snapshot.ErrFormat, what, id, j, nextID)
		}
	}
	return ids, nil
}

// decodeRawPoints reads count flat point images of dimension dim.
func decodeRawPoints(d snapshot.Decoder, count uint64, dim int) ([]Point, error) {
	w := bitvec.Words(dim)
	flat := make([]uint64, count*uint64(w))
	d.WordsInto(flat)
	if err := d.Err(); err != nil {
		return nil, err
	}
	pts := make([]Point, count)
	for i := range pts {
		pts[i] = Point(flat[uint64(i)*uint64(w) : uint64(i+1)*uint64(w)])
	}
	return pts, nil
}

// LoadMutable reads a mutable-tier snapshot from r and brings the tier
// up under cfg (whose runtime knobs — memtable cap, compaction cadence,
// WAL and snapshot paths — apply; the build options come from the file,
// so seeds and parameters survive restarts). It accepts either a
// KindMutable snapshot or a plain KindIndex one, which becomes the
// tier's base with identity IDs — the path that boots a mutable server
// from an annsctl-built (or annsctl-compacted) static snapshot.
func LoadMutable(r io.Reader, cfg MutableConfig) (*MutableIndex, error) {
	d, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	switch d.Kind() {
	case snapshot.KindIndex:
		ix, err := decodeIndexBody(d)
		if err == nil {
			err = d.Close()
		}
		if err != nil {
			return nil, err
		}
		cfg.Options = ix.Options()
		return NewMutable(ix, cfg)
	case snapshot.KindMutable:
		// handled below
	default:
		return nil, fmt.Errorf("%w: kind %q cannot boot a mutable tier",
			snapshot.ErrFormat, snapshot.KindName(d.Kind()))
	}

	env, err := snapshot.DecodeIndexOptions(d)
	if err != nil {
		return nil, err
	}
	cfg.Options = unenvelope(env)
	cfg, err = cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	opts, err := cfg.Options.normalized()
	if err != nil {
		return nil, err
	}
	mx := &MutableIndex{
		cfg:     cfg,
		opts:    opts,
		mem:     segment.NewMemtable(),
		tomb:    segment.NewIDSet(),
		present: segment.NewIDSet(),
	}
	mx.nextID = d.U64()
	mx.segSeq = d.U64()
	mx.epoch = d.U64()
	hasBase := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	// nextID bounds every ID-array length below (decodeIDs), so capping
	// it here is what keeps a corrupt header failing with ErrFormat
	// instead of an absurd allocation — the same ceiling Inspect uses.
	if mx.nextID > snapshot.MaxPlausibleN {
		return nil, fmt.Errorf("%w: implausible next-id %d", snapshot.ErrFormat, mx.nextID)
	}
	if hasBase > 1 {
		return nil, fmt.Errorf("%w: mutable base flag is %d", snapshot.ErrFormat, hasBase)
	}
	if hasBase == 1 {
		count := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		ids, err := decodeIDs(d, count, mx.nextID, "base")
		if err != nil {
			return nil, err
		}
		base, err := decodeIndexBody(d)
		if err != nil {
			return nil, fmt.Errorf("base: %w", err)
		}
		if base.Len() != len(ids) {
			return nil, fmt.Errorf("%w: base holds %d points but maps %d ids",
				snapshot.ErrFormat, base.Len(), len(ids))
		}
		if base.Options().Dimension != opts.Dimension {
			return nil, fmt.Errorf("%w: base dimension %d under envelope dimension %d",
				snapshot.ErrFormat, base.Options().Dimension, opts.Dimension)
		}
		mx.base, mx.baseIDs = base, ids
		for _, id := range ids {
			mx.present.Add(id)
		}
	}
	nsegs := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if nsegs > snapshot.MaxPlausibleSegments {
		return nil, fmt.Errorf("%w: implausible segment count %d", snapshot.ErrFormat, nsegs)
	}
	var rebuild []*mutSegment
	for s := uint64(0); s < nsegs; s++ {
		seq := d.U64()
		count := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		ids, err := decodeIDs(d, count, mx.nextID, fmt.Sprintf("segment %d", s))
		if err != nil {
			return nil, err
		}
		built := d.U64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		seg := &mutSegment{seq: seq}
		switch built {
		case 1:
			ix, err := decodeIndexBody(d)
			if err != nil {
				return nil, fmt.Errorf("segment %d: %w", s, err)
			}
			if ix.Len() != len(ids) {
				return nil, fmt.Errorf("%w: segment %d holds %d points but maps %d ids",
					snapshot.ErrFormat, s, ix.Len(), len(ids))
			}
			seg.mem = segment.NewMemtableFrom(ids, ix.points())
			seg.idx.Store(ix)
		case 0:
			pts, err := decodeRawPoints(d, count, opts.Dimension)
			if err != nil {
				return nil, err
			}
			seg.mem = segment.NewMemtableFrom(ids, pts)
			rebuild = append(rebuild, seg)
		default:
			return nil, fmt.Errorf("%w: segment %d built flag is %d", snapshot.ErrFormat, s, built)
		}
		for _, id := range ids {
			mx.present.Add(id)
		}
		mx.segs = append(mx.segs, seg)
	}
	memCount := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	memIDs, err := decodeIDs(d, memCount, mx.nextID, "memtable")
	if err != nil {
		return nil, err
	}
	memPts, err := decodeRawPoints(d, memCount, opts.Dimension)
	if err != nil {
		return nil, err
	}
	mx.mem = segment.NewMemtableFrom(memIDs, memPts)
	for _, id := range memIDs {
		mx.present.Add(id)
	}
	tombCount := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	tombs, err := decodeIDs(d, tombCount, mx.nextID, "tombstones")
	if err != nil {
		return nil, err
	}
	for _, id := range tombs {
		if !mx.present.Remove(id) {
			return nil, fmt.Errorf("%w: tombstone %d does not name a stored point",
				snapshot.ErrFormat, id)
		}
		mx.tomb.Add(id)
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	if err := mx.start(); err != nil {
		return nil, err
	}
	// Segments saved before their mini-index build finished come back
	// raw; re-enqueue the builds (scan-only until they land).
	for _, seg := range rebuild {
		seg := seg
		mx.run(func() { mx.buildSegment(seg) })
	}
	return mx, nil
}
