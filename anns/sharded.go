package anns

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/par"
)

// ShardedIndex partitions one logical database across S independently
// seeded shards, each a full *Index over its slice of the points. A query
// fans out to every shard concurrently and the per-shard answers are
// merged by Hamming distance, so the logical answer quality matches a
// single index over the union (the true nearest neighbor lives in exactly
// one shard, and that shard sees it as its own nearest neighbor at an
// easier — smaller n — scale).
//
// The cell-probe accounting is aggregated the way the model charges a
// parallel machine: the shards probe simultaneously, so Rounds is the
// maximum over shards while Probes and MaxParallel sum across them. The
// paper's adaptivity/efficiency tradeoff therefore stays observable at
// serving scale: sharding buys wall-clock parallelism and smaller
// per-shard tables at the price of an S-fold probe (work) blowup.
type ShardedIndex struct {
	opts   Options
	shards []*Index
	// global[s][j] is the position in the original Build slice of shard
	// s's j-th point, mapping shard-local answers back to logical
	// indices. Stored as uint64 words — the snapshot section's exact
	// layout — so the mmap load path can serve the mapping as a
	// zero-copy view of the file (DESIGN.md §9.1).
	global [][]uint64
	// globalFn is the same mapping as a function, built once so the
	// per-query merge stays allocation-free (a per-call closure would
	// allocate on the pinned hot path).
	globalFn func(shard, local int) int
	n        int
}

// splitSeed derives shard s's seed from the user seed via a splitmix64
// step, so shards draw independent public randomness even for adjacent
// or zero user seeds.
func splitSeed(seed uint64, s int) uint64 {
	z := seed + uint64(s+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// BuildSharded partitions points round-robin across shards indices and
// builds one Index per shard. Options are applied per shard (each shard
// gets its own derived seed); the points slice is retained, not copied.
// Every shard must receive at least 2 points, so len(points) >= 2*shards.
func BuildSharded(points []Point, shards int, opts Options) (*ShardedIndex, error) {
	if shards < 1 {
		return nil, errors.New("anns: BuildSharded needs at least 1 shard")
	}
	if len(points) < 2*shards {
		return nil, fmt.Errorf("anns: %d points cannot fill %d shards with 2 points each",
			len(points), shards)
	}
	sx := &ShardedIndex{
		opts:   opts,
		shards: make([]*Index, shards),
		global: make([][]uint64, shards),
		n:      len(points),
	}
	sx.globalFn = func(s, j int) int { return int(sx.global[s][j]) }
	parts := make([][]Point, shards)
	for i, p := range points {
		s := i % shards
		parts[s] = append(parts[s], p)
		sx.global[s] = append(sx.global[s], uint64(i))
	}
	// Shards are independent (disjoint points, derived seeds), so they
	// build concurrently, each with a proportional slice of the pool.
	workers := par.Workers(opts.BuildWorkers)
	inner := workers / shards
	if inner < 1 {
		inner = 1
	}
	errs := make([]error, shards)
	par.Do(workers, shards, func(s int) {
		o := opts
		o.Seed = splitSeed(opts.Seed, s)
		o.BuildWorkers = inner
		sx.shards[s], errs[s] = Build(parts[s], o)
	})
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("anns: building shard %d/%d: %w", s, shards, err)
		}
	}
	// Build normalizes defaults (Gamma, Rounds, Repetitions); adopt them.
	norm := sx.shards[0].Options()
	norm.Seed = opts.Seed
	norm.BuildWorkers = opts.BuildWorkers
	sx.opts = norm
	return sx, nil
}

// shardScratch is the reusable fan-out state of one sharded query: the
// per-shard result slots and the reply buffer the merge folds over.
// Pooled so the merge path does not reallocate them per call.
type shardScratch struct {
	results []Result
	ok      []bool
	errs    []error
	replies []ShardReply
}

var shardScratchPool = sync.Pool{New: func() any { return new(shardScratch) }}

func acquireShardScratch(n int) *shardScratch {
	s := shardScratchPool.Get().(*shardScratch)
	if cap(s.results) < n {
		s.results = make([]Result, n)
		s.ok = make([]bool, n)
		s.errs = make([]error, n)
		s.replies = make([]ShardReply, n)
	}
	s.results = s.results[:n]
	s.ok = s.ok[:n]
	s.errs = s.errs[:n]
	s.replies = s.replies[:n]
	for i := range s.errs {
		s.errs[i] = nil
	}
	return s
}

// mergeShardResults folds per-shard outcomes into one logical Result.
// ok[s] marks shards whose query succeeded (for QueryNear, returned YES).
// The fold itself is the exported MergeShardReplies, shared with the
// distributed coordinator so remote merges stay byte-identical. replies
// is the caller's reuse buffer (the query paths pass their scratch's);
// nil allocates.
func (sx *ShardedIndex) mergeShardResults(results []Result, ok []bool, replies []ShardReply) Result {
	if cap(replies) < len(results) {
		replies = make([]ShardReply, len(results))
	}
	replies = replies[:len(results)]
	for s, r := range results {
		replies[s] = ShardReply{Result: r, OK: ok[s]}
	}
	g := sx.globalFn
	if g == nil { // hand-assembled index (tests); cold path may allocate
		g = func(s, j int) int { return int(sx.global[s][j]) }
	}
	return MergeShardReplies(replies, g)
}

// Query fans x out to every shard concurrently and returns the closest
// answer across shards, with aggregated accounting (Rounds = max over
// shards, Probes and MaxParallel summed). It fails only when every shard
// fails; a shard-level failure can at worst hide that shard's candidate,
// degrading the answer the same way one lost repetition degrades a
// boosted single index.
func (sx *ShardedIndex) Query(x Point) (Result, error) {
	sc := acquireShardScratch(len(sx.shards))
	defer shardScratchPool.Put(sc)
	var wg sync.WaitGroup
	for s := range sx.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Each shard goroutine draws its own pooled query context;
			// a caller-held Scratch cannot be shared across the
			// concurrent fan-out.
			res, err := sx.shards[s].Query(x)
			sc.results[s] = res
			sc.ok[s] = err == nil
		}(s)
	}
	wg.Wait()
	out := sx.mergeShardResults(sc.results, sc.ok, sc.replies)
	if out.Index < 0 {
		return out, errors.New("anns: query failed on every shard")
	}
	return out, nil
}

// QueryScratch implements the Scratch-taking query surface uniformly with
// *Index. The sharded fan-out runs on per-shard pooled contexts (see
// Query), so the caller's scratchpad is not consumed — but server workers
// can hold one code path for both index kinds.
func (sx *ShardedIndex) QueryScratch(x Point, _ *Scratch) (Result, error) {
	return sx.Query(x)
}

// QueryNearScratch is the λ-ANNS counterpart of QueryScratch.
func (sx *ShardedIndex) QueryNearScratch(x Point, lambda float64, _ *Scratch) (Result, error) {
	return sx.QueryNear(x, lambda)
}

// QueryNear answers the λ-near-neighbor decision over the sharded
// database: YES from any shard (closest witness wins) beats NO, and the
// logical answer is NO only when every shard answers NO. Shard-level
// errors surface only if no shard produced an answer at all.
func (sx *ShardedIndex) QueryNear(x Point, lambda float64) (Result, error) {
	sc := acquireShardScratch(len(sx.shards))
	defer shardScratchPool.Put(sc)
	var wg sync.WaitGroup
	for s := range sx.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			res, err := sx.shards[s].QueryNear(x, lambda)
			sc.results[s] = res
			sc.errs[s] = err
			sc.ok[s] = err == nil && res.Index >= 0
		}(s)
	}
	wg.Wait()
	out := sx.mergeShardResults(sc.results, sc.ok, sc.replies)
	if out.Index < 0 {
		// All shards said NO (or errored); NO is an answer, errors are not.
		for _, err := range sc.errs {
			if err == nil {
				return out, nil
			}
		}
		return out, fmt.Errorf("anns: near query failed on every shard: %w", sc.errs[0])
	}
	return out, nil
}

// BatchQuery answers many queries over a fixed worker pool, each worker
// running the full shard fan-out. Results are in input order.
func (sx *ShardedIndex) BatchQuery(xs []Point, workers int) []BatchResult {
	return sx.BatchQueryContext(context.Background(), xs, workers)
}

// BatchQueryContext is BatchQuery under a context, with the same
// cancellation semantics as (*Index).BatchQueryContext.
func (sx *ShardedIndex) BatchQueryContext(ctx context.Context, xs []Point, workers int) []BatchResult {
	return batchRun(ctx, len(xs), workers, func(i int, sc *Scratch) (Result, error) {
		return sx.QueryScratch(xs[i], sc)
	})
}

// BatchQueryNear is the λ-ANNS batch entry point over all shards.
func (sx *ShardedIndex) BatchQueryNear(xs []Point, lambda float64, workers int) []BatchResult {
	return batchRun(context.Background(), len(xs), workers, func(i int, sc *Scratch) (Result, error) {
		return sx.QueryNearScratch(xs[i], lambda, sc)
	})
}

// Len returns the logical database size (sum over shards).
func (sx *ShardedIndex) Len() int { return sx.n }

// Shards returns the shard count.
func (sx *ShardedIndex) Shards() int { return len(sx.shards) }

// Shard returns shard s's underlying *Index. The returned index answers
// with shard-local point positions; GlobalIndex maps them back to the
// logical database. annsctl shard-split uses this to snapshot each shard
// for its own serving process.
func (sx *ShardedIndex) Shard(s int) *Index { return sx.shards[s] }

// GlobalIndex translates shard s's local point position back to the
// position in the original Build slice.
func (sx *ShardedIndex) GlobalIndex(shard, local int) int { return int(sx.global[shard][local]) }

// Options returns the normalized options the shards were built with (the
// Seed field is the user seed; each shard derives its own from it).
func (sx *ShardedIndex) Options() Options { return sx.opts }

// Space rolls the per-shard storage accounting up to the subsystem:
// MaterializedCells sums, and NominalLog2Cells is log₂ of the summed
// nominal cell counts (a log-sum-exp, since the per-shard counts only
// exist as logarithms).
func (sx *ShardedIndex) Space() Space {
	var out Space
	maxLog := math.Inf(-1)
	logs := make([]float64, len(sx.shards))
	for s, ix := range sx.shards {
		sp := ix.Space()
		out.MaterializedCells += sp.MaterializedCells
		logs[s] = sp.NominalLog2Cells
		if sp.NominalLog2Cells > maxLog {
			maxLog = sp.NominalLog2Cells
		}
	}
	sum := 0.0
	for _, l := range logs {
		sum += math.Exp2(l - maxLog)
	}
	out.NominalLog2Cells = maxLog + math.Log2(sum)
	return out
}

// ShardSpaces returns each shard's own storage accounting, in shard order.
func (sx *ShardedIndex) ShardSpaces() []Space {
	out := make([]Space, len(sx.shards))
	for s, ix := range sx.shards {
		out[s] = ix.Space()
	}
	return out
}
