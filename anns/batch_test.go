package anns_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func TestBatchQueryMatchesSequential(t *testing.T) {
	d := 512
	pts := testPoints(t, d, 100)
	idx, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7000)
	queries := make([]anns.Point, 24)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, pts[i], d, 18)
	}
	batch := idx.BatchQuery(queries, 4)
	if len(batch) != len(queries) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, q := range queries {
		seq, seqErr := idx.Query(q)
		if (seqErr == nil) != (batch[i].Err == nil) {
			t.Fatalf("query %d: error mismatch %v vs %v", i, seqErr, batch[i].Err)
		}
		if seqErr == nil && (seq.Index != batch[i].Index || seq.Probes != batch[i].Probes) {
			t.Fatalf("query %d: batch (%d, %d probes) vs sequential (%d, %d probes)",
				i, batch[i].Index, batch[i].Probes, seq.Index, seq.Probes)
		}
	}
}

// TestBatchQueryPrimedFullIdentity pins the primed batch path (the
// default Algorithm 1 scheme takes it) to the sequential path on every
// Result field, at a batch size that is not a multiple of the priming
// chunk, across two consecutive batches so pooled worker state is reused.
func TestBatchQueryPrimedFullIdentity(t *testing.T) {
	d := 256
	pts := testPoints(t, d, 80)
	idx, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7300)
	for round := 0; round < 2; round++ {
		queries := make([]anns.Point, 21)
		for i := range queries {
			if i%2 == 0 {
				queries[i] = hamming.AtDistance(r, pts[(i+round)%len(pts)], d, 4+i)
			} else {
				queries[i] = hamming.Random(r, d)
			}
		}
		batch := idx.BatchQuery(queries, 3)
		for i, q := range queries {
			seq, seqErr := idx.Query(q)
			if (seqErr == nil) != (batch[i].Err == nil) {
				t.Fatalf("round %d query %d: error mismatch %v vs %v", round, i, seqErr, batch[i].Err)
			}
			if seq != batch[i].Result {
				t.Fatalf("round %d query %d:\n batch: %+v\n   seq: %+v", round, i, batch[i].Result, seq)
			}
		}
	}
}

func TestBatchQueryWorkerCounts(t *testing.T) {
	d := 256
	pts := testPoints(t, d, 50)
	idx, err := anns.Build(pts, anns.Options{Dimension: d, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7100)
	queries := make([]anns.Point, 9)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, pts[i], d, 10)
	}
	for _, workers := range []int{-1, 0, 1, 3, 100} {
		out := idx.BatchQuery(queries, workers)
		if len(out) != len(queries) {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
	}
	if out := idx.BatchQuery(nil, 4); len(out) != 0 {
		t.Error("empty batch nonempty result")
	}
}

func TestBatchQueryNear(t *testing.T) {
	d := 512
	pts := testPoints(t, d, 100)
	idx, err := anns.Build(pts, anns.Options{Dimension: d, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7200)
	queries := make([]anns.Point, 16)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = hamming.AtDistance(r, pts[i], d, 6)
		} else {
			queries[i] = hamming.Random(r, d)
		}
	}
	out := idx.BatchQueryNear(queries, 6, 4)
	for i, res := range out {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		if res.Probes != 1 {
			t.Fatalf("query %d used %d probes", i, res.Probes)
		}
	}
}

// TestBatchQueryRace is meaningful under -race: many workers share the
// same lazy table oracles.
func TestBatchQueryRace(t *testing.T) {
	d := 256
	pts := testPoints(t, d, 60)
	idx, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7300)
	queries := make([]anns.Point, 64)
	for i := range queries {
		queries[i] = hamming.Random(r, d)
	}
	idx.BatchQuery(queries, 8)
}

func TestBatchQueryContextCancelled(t *testing.T) {
	d := 256
	pts := testPoints(t, d, 40)
	idx, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 2, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7400)
	queries := make([]anns.Point, 32)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, pts[i%len(pts)], d, 10)
	}

	// Already-cancelled context: nothing may run; every slot carries the
	// context error and the no-answer sentinel.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := idx.BatchQueryContext(ctx, queries, 4)
	if len(out) != len(queries) {
		t.Fatalf("%d results", len(out))
	}
	for i, b := range out {
		if !errors.Is(b.Err, context.Canceled) {
			t.Fatalf("entry %d: err = %v, want context.Canceled", i, b.Err)
		}
		if b.Index != -1 || b.Distance != -1 {
			t.Fatalf("entry %d: cancelled slot carries answer (%d, %d)", i, b.Index, b.Distance)
		}
	}

	// Background context: wrapper and context variant agree.
	got := idx.BatchQueryContext(context.Background(), queries[:8], 2)
	want := idx.BatchQuery(queries[:8], 2)
	for i := range got {
		if (got[i].Err == nil) != (want[i].Err == nil) || got[i].Index != want[i].Index {
			t.Fatalf("entry %d: context variant (%d, %v) vs wrapper (%d, %v)",
				i, got[i].Index, got[i].Err, want[i].Index, want[i].Err)
		}
	}
}

func TestBatchQueryNearContextDeadline(t *testing.T) {
	d := 256
	pts := testPoints(t, d, 40)
	idx, err := anns.Build(pts, anns.Options{Dimension: d, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7500)
	queries := make([]anns.Point, 16)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, pts[i], d, 5)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	out := idx.BatchQueryNearContext(ctx, queries, 4, 4)
	for i, b := range out {
		if !errors.Is(b.Err, context.DeadlineExceeded) {
			t.Fatalf("entry %d: err = %v, want deadline exceeded", i, b.Err)
		}
	}
}
