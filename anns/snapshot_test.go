package anns

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// snapshotCorpus is the fixed-seed workload of the losslessness contract:
// a corpus plus 1000 query points exercising near and far distances.
func snapshotCorpus(t testing.TB, n, d int) ([]Point, []Point) {
	t.Helper()
	r := rng.New(2016)
	db := make([]Point, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	queries := make([]Point, 1000)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, db[i%n], d, 1+i%(d/2))
	}
	return db, queries
}

// queryable is the surface the roundtrip comparison drives: both *Index
// and *ShardedIndex satisfy it.
type queryable interface {
	Query(x Point) (Result, error)
	QueryNear(x Point, lambda float64) (Result, error)
	Len() int
	Options() Options
}

// sameServing runs the full workload through both sides and requires
// byte-identical answers and accounting.
func sameServing(t *testing.T, label string, built, loaded queryable, queries []Point) {
	t.Helper()
	if built.Len() != loaded.Len() {
		t.Fatalf("%s: Len %d vs %d", label, built.Len(), loaded.Len())
	}
	if built.Options() != loaded.Options() {
		t.Fatalf("%s: options diverged:\n built  %+v\n loaded %+v", label, built.Options(), loaded.Options())
	}
	for i, q := range queries {
		a, aerr := built.Query(q)
		b, berr := loaded.Query(q)
		if (aerr == nil) != (berr == nil) || a != b {
			t.Fatalf("%s: query %d diverged: built %+v (%v) vs loaded %+v (%v)", label, i, a, aerr, b, berr)
		}
		an, anerr := built.QueryNear(q, float64(1+i%32))
		bn, bnerr := loaded.QueryNear(q, float64(1+i%32))
		if (anerr == nil) != (bnerr == nil) || an != bn {
			t.Fatalf("%s: near query %d diverged: built %+v (%v) vs loaded %+v (%v)", label, i, an, anerr, bn, bnerr)
		}
	}
}

// TestSnapshotRoundtripIndex pins the Save→Load→Query losslessness of
// every single-index serving path: Algorithm 1, Algorithm 2, and boosted
// repetitions, each over the 1k-query fixed-seed workload.
func TestSnapshotRoundtripIndex(t *testing.T) {
	db, queries := snapshotCorpus(t, 96, 128)
	cases := []struct {
		name string
		opts Options
	}{
		{"algo1-k2", Options{Dimension: 128, Rounds: 2, Seed: 5}},
		{"algo2-k6", Options{Dimension: 128, Rounds: 6, Algorithm: Sophisticated, Seed: 6}},
		{"boosted-r3", Options{Dimension: 128, Rounds: 2, Repetitions: 3, Seed: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			built, err := Build(db, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := SaveIndex(&buf, built); err != nil {
				t.Fatalf("SaveIndex: %v", err)
			}
			loaded, err := LoadIndex(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("LoadIndex: %v", err)
			}
			sameServing(t, tc.name, built, loaded, queries)
		})
	}
}

// TestSnapshotRoundtripSharded pins the same contract across the shard
// fan-out and merge.
func TestSnapshotRoundtripSharded(t *testing.T) {
	db, queries := snapshotCorpus(t, 96, 128)
	built, err := BuildSharded(db, 4, Options{Dimension: 128, Rounds: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSharded(&buf, built); err != nil {
		t.Fatalf("SaveSharded: %v", err)
	}
	loaded, err := LoadSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadSharded: %v", err)
	}
	if loaded.Shards() != built.Shards() {
		t.Fatalf("shards %d vs %d", loaded.Shards(), built.Shards())
	}
	sameServing(t, "sharded-4", built, loaded, queries[:500])
}

// TestSnapshotSpaceAccounting verifies the loaded index reports the same
// nominal space (the model quantity must survive the format).
func TestSnapshotSpaceAccounting(t *testing.T) {
	db, _ := snapshotCorpus(t, 64, 128)
	built, err := Build(db, Options{Dimension: 128, Rounds: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveIndex(&buf, built); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b, l := built.Space().NominalLog2Cells, loaded.Space().NominalLog2Cells; b != l {
		t.Errorf("nominal space diverged: %v vs %v", b, l)
	}
}

// TestLoadAnyDispatch checks kind dispatch and the kind-mismatch errors.
func TestLoadAnyDispatch(t *testing.T) {
	db, _ := snapshotCorpus(t, 64, 128)
	ix, err := Build(db, Options{Dimension: 128, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	sx, err := BuildSharded(db, 2, Options{Dimension: 128, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	var single, sharded bytes.Buffer
	if err := SaveIndex(&single, ix); err != nil {
		t.Fatal(err)
	}
	if err := SaveSharded(&sharded, sx); err != nil {
		t.Fatal(err)
	}
	gotIx, gotSx, err := LoadAny(bytes.NewReader(single.Bytes()))
	if err != nil || gotIx == nil || gotSx != nil {
		t.Fatalf("LoadAny(single) = (%v, %v, %v)", gotIx, gotSx, err)
	}
	gotIx, gotSx, err = LoadAny(bytes.NewReader(sharded.Bytes()))
	if err != nil || gotIx != nil || gotSx == nil {
		t.Fatalf("LoadAny(sharded) = (%v, %v, %v)", gotIx, gotSx, err)
	}
	if _, err := LoadIndex(bytes.NewReader(sharded.Bytes())); !errors.Is(err, snapshot.ErrFormat) {
		t.Errorf("LoadIndex(sharded) = %v, want ErrFormat", err)
	}
	if _, err := LoadSharded(bytes.NewReader(single.Bytes())); !errors.Is(err, snapshot.ErrFormat) {
		t.Errorf("LoadSharded(single) = %v, want ErrFormat", err)
	}
}

// TestSnapshotInspectSharded exercises Inspect over the richest envelope.
func TestSnapshotInspectSharded(t *testing.T) {
	db, _ := snapshotCorpus(t, 64, 128)
	sx, err := BuildSharded(db, 2, Options{Dimension: 128, Rounds: 2, Repetitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSharded(&buf, sx); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	info, err := snapshot.Inspect(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Kind != snapshot.KindSharded || info.Shards != 2 || info.N != 64 {
		t.Errorf("info = %+v", info)
	}
	if want := 2 * 2; len(info.Cores) != want { // shards × repetitions
		t.Errorf("got %d core bodies, want %d", len(info.Cores), want)
	}
	if info.Bytes != int64(len(raw)) {
		t.Errorf("Bytes = %d, file is %d", info.Bytes, len(raw))
	}
	if fmt.Sprint(info.Options.Repetitions) != "2" {
		t.Errorf("options not round-tripped: %+v", info.Options)
	}
}

// TestParallelBuildDeterminism pins that the worker pool does not change
// what gets built: indexes built with 1 worker and many workers answer
// identically (the randomness is split per matrix, not per goroutine).
func TestParallelBuildDeterminism(t *testing.T) {
	db, queries := snapshotCorpus(t, 64, 128)
	seq, err := Build(db, Options{Dimension: 128, Rounds: 2, Seed: 21, BuildWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parl, err := Build(db, Options{Dimension: 128, Rounds: 2, Seed: 21, BuildWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries[:200] {
		a, aerr := seq.Query(q)
		b, berr := parl.Query(q)
		if (aerr == nil) != (berr == nil) || a != b {
			t.Fatalf("query %d diverged between sequential and parallel build: %+v vs %+v", i, a, b)
		}
	}
}
