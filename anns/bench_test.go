package anns

import (
	"testing"

	"repro/internal/hamming"
	"repro/internal/rng"
)

// The BenchmarkQuery* family measures the public query path end to end at
// steady state (tables warmed, sketches cached): the quantity the
// zero-allocation query engine optimizes. Run with
//
//	go test -bench BenchmarkQuery -benchmem ./anns ./internal/core
//
// and compare against BENCH_query_engine.json.

func benchDB(b *testing.B, n, d int, seed uint64) ([]Point, []Point) {
	b.Helper()
	r := rng.New(seed)
	db := make([]Point, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	queries := make([]Point, 32)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, db[i%n], d, d/16)
	}
	return db, queries
}

// BenchmarkQuery is the acceptance path: Algorithm 1 with the default
// round budget k=2 behind the public anns.Index API.
func BenchmarkQuery(b *testing.B) {
	db, queries := benchDB(b, 256, 256, 41)
	ix, err := Build(db, Options{Dimension: 256, Rounds: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range queries { // warm the lazy cells and sketches
		ix.Query(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(queries[i%len(queries)])
	}
}

// BenchmarkQueryNear is the 1-probe λ-ANNS decision path.
func BenchmarkQueryNear(b *testing.B) {
	db, queries := benchDB(b, 256, 256, 43)
	ix, err := Build(db, Options{Dimension: 256, Rounds: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range queries {
		ix.QueryNear(q, 16)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.QueryNear(queries[i%len(queries)], 16)
	}
}

// BenchmarkQuerySharded exercises the fan-out + Hamming merge path.
func BenchmarkQuerySharded(b *testing.B) {
	db, queries := benchDB(b, 512, 256, 47)
	sx, err := BuildSharded(db, 4, Options{Dimension: 256, Rounds: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, q := range queries {
		sx.Query(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sx.Query(queries[i%len(queries)])
	}
}

// BenchmarkQueryBatch measures the pooled batch entry point (8 workers).
func BenchmarkQueryBatch(b *testing.B) {
	db, queries := benchDB(b, 256, 256, 53)
	ix, err := Build(db, Options{Dimension: 256, Rounds: 2})
	if err != nil {
		b.Fatal(err)
	}
	ix.BatchQuery(queries, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.BatchQuery(queries, 8)
	}
}
