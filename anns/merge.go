package anns

// Shard-merge helpers, exported so a distributed coordinator
// (internal/router) can fold remote per-shard answers into one logical
// Result with exactly the accounting ShardedIndex uses in-process.
// Keeping the fold in one function is what makes "distributed answers are
// byte-identical to single-process answers" a structural property instead
// of a test-enforced coincidence.

// ShardReply is one shard's answer to a fanned-out query. Result.Index is
// shard-local; OK marks shards that produced an answer (for the λ-near
// decision, shards that answered YES). A shard that failed outright —
// in-process error, remote 5xx, or an unreachable replica — contributes
// its accounting (if any) but no candidate.
type ShardReply struct {
	Result Result
	OK     bool
}

// MergeShardReplies folds per-shard replies into one logical Result under
// the parallel-machine accounting the paper charges: the shards probe
// simultaneously, so Rounds is the maximum over shards while Probes and
// MaxParallel sum across them. The answer is the minimum-distance
// candidate over OK shards, ties broken by lowest shard position, with
// the shard-local index translated through global. The fold depends only
// on each reply's shard position, never on arrival order, so a
// coordinator may fill the slice as responses land.
func MergeShardReplies(replies []ShardReply, global func(shard, local int) int) Result {
	out := Result{Index: -1, Distance: -1}
	for s, rep := range replies {
		r := rep.Result
		if r.Rounds > out.Rounds {
			out.Rounds = r.Rounds
		}
		out.Probes += r.Probes
		out.MaxParallel += r.MaxParallel
		if !rep.OK {
			continue
		}
		if out.Index < 0 || r.Distance < out.Distance {
			out.Index = global(s, r.Index)
			out.Distance = r.Distance
		}
	}
	return out
}

// RoundRobinGlobal returns the shard-local → logical index translation
// for the round-robin partition BuildSharded and shard-split use: point i
// of the original Build slice lands in shard i%shards as that shard's
// (i/shards)-th point, so shard s's j-th point is logical point s + j·shards.
func RoundRobinGlobal(shards int) func(shard, local int) int {
	return func(shard, local int) int { return shard + local*shards }
}
