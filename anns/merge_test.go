package anns

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

// TestMergeShardReplies pins the exported fold the router depends on:
// rounds = max, probes/max_parallel = sum, answer = closest OK shard,
// ties to the lowest shard position, failed shards contribute accounting
// but no candidate.
func TestMergeShardReplies(t *testing.T) {
	global := func(s, j int) int { return 100*s + j }
	replies := []ShardReply{
		{Result: Result{Index: 3, Distance: 7, Rounds: 2, Probes: 10, MaxParallel: 4}, OK: true},
		{Result: Result{Index: 1, Distance: 5, Rounds: 3, Probes: 6, MaxParallel: 2}, OK: true},
		{Result: Result{Index: 0, Distance: 1, Rounds: 1, Probes: 9, MaxParallel: 9}, OK: false},
	}
	out := MergeShardReplies(replies, global)
	if out.Rounds != 3 || out.Probes != 25 || out.MaxParallel != 15 {
		t.Errorf("accounting = rounds %d probes %d maxpar %d, want 3/25/15",
			out.Rounds, out.Probes, out.MaxParallel)
	}
	if out.Index != 101 || out.Distance != 5 {
		t.Errorf("answer = (%d, %d), want shard 1's point 1 → 101 at distance 5", out.Index, out.Distance)
	}

	// Distance tie: the lowest shard position wins, matching the
	// in-process loop order.
	tie := []ShardReply{
		{Result: Result{Index: 2, Distance: 4}, OK: true},
		{Result: Result{Index: 8, Distance: 4}, OK: true},
	}
	if out := MergeShardReplies(tie, global); out.Index != 2 {
		t.Errorf("tie broke to %d, want shard 0's point 2", out.Index)
	}

	// Every shard failed: no candidate, accounting still aggregates.
	dead := []ShardReply{
		{Result: Result{Index: 0, Distance: 0, Rounds: 2, Probes: 3}, OK: false},
		{OK: false},
	}
	if out := MergeShardReplies(dead, global); out.Index != -1 || out.Probes != 3 || out.Rounds != 2 {
		t.Errorf("all-failed merge = %+v, want Index -1 with aggregated accounting", out)
	}
}

// TestRoundRobinGlobalMatchesBuildSharded proves the formula the router
// uses for local→global translation is exactly the partition
// BuildSharded (and hence annsctl shard-split) produces — the property
// that lets the placement manifest omit a per-point mapping table.
func TestRoundRobinGlobalMatchesBuildSharded(t *testing.T) {
	r := rng.New(11)
	inst := workload.Uniform(r, 64, 37, 1) // odd n: shards of unequal size
	for _, shards := range []int{2, 3, 5} {
		sx, err := BuildSharded(inst.DB, shards, Options{Dimension: 64, Rounds: 2, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		g := RoundRobinGlobal(shards)
		for s := 0; s < sx.Shards(); s++ {
			for j := 0; j < sx.Shard(s).Len(); j++ {
				if got, want := g(s, j), sx.GlobalIndex(s, j); got != want {
					t.Fatalf("shards=%d: RoundRobinGlobal(%d,%d) = %d, BuildSharded mapped %d",
						shards, s, j, got, want)
				}
			}
		}
	}
}
