package anns

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
)

// BatchResult pairs a query's position with its outcome.
type BatchResult struct {
	Result
	Err error
}

// batchRun is the shared worker pool behind every batch entry point: n
// independent jobs fanned over a fixed pool, results in input order.
// Each worker owns one Scratch for its whole lifetime and threads it
// through every job, so a batch reuses pooled query contexts per worker
// instead of per call. When ctx is cancelled the dispatcher stops handing
// out jobs and every job not yet started resolves to ctx.Err(); jobs
// already running finish (a cell-probe query is not interruptible
// mid-round).
func batchRun(ctx context.Context, n, workers int, run func(i int, sc *Scratch) (Result, error)) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]BatchResult, n)
	if n == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := acquireScratch()
			defer releaseScratch(sc)
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Result: Result{Index: -1, Distance: -1}, Err: err}
					continue
				}
				res, err := run(i, sc)
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-done:
			for j := i; j < n; j++ {
				out[j] = BatchResult{Result: Result{Index: -1, Distance: -1}, Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// primeChunk is how many queries a primed batch worker claims at a time:
// a multiple of the sketch kernel's block width, small enough that a
// straggler chunk does not serialize the tail of a batch.
const primeChunk = 8

// batchState is the per-worker scratch of a primed batch run: primeChunk
// query contexts (each wrapped as a Scratch for the run callback) plus
// the PrimeBatch destination slice. Pooled whole so steady-state batches
// allocate nothing.
type batchState struct {
	scs  [primeChunk]*Scratch
	ctxs [primeChunk]*core.QueryCtx
	dsts [primeChunk]bitvec.Vector
}

var batchStatePool = sync.Pool{New: func() any {
	st := new(batchState)
	for i := range st.scs {
		st.scs[i] = NewScratch()
		st.ctxs[i] = st.scs[i].c
	}
	return st
}}

// batchRunPrimed is batchRun for schemes whose first round is
// query-independent (core.BatchPrimer): workers claim chunks of
// primeChunk queries, precompute the chunk's first-round sketches with
// one blocked matrix traversal per level, then run the queries on the
// primed contexts. Results, accounting, and cancellation semantics are
// identical to batchRun — priming only moves sketch work into a
// batch-amortized kernel.
func batchRunPrimed(ctx context.Context, xs []Point, workers int, primer core.BatchPrimer,
	run func(i int, sc *Scratch) (Result, error)) []BatchResult {
	n := len(xs)
	chunks := (n + primeChunk - 1) / primeChunk
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}
	out := make([]BatchResult, n)
	if n == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := batchStatePool.Get().(*batchState)
			defer batchStatePool.Put(st)
			for lo := range jobs {
				hi := lo + primeChunk
				if hi > n {
					hi = n
				}
				if ctx.Err() == nil {
					primer.PrimeBatch(st.ctxs[:hi-lo], xs[lo:hi], st.dsts[:])
				}
				for i := lo; i < hi; i++ {
					if err := ctx.Err(); err != nil {
						out[i] = BatchResult{Result: Result{Index: -1, Distance: -1}, Err: err}
						continue
					}
					res, err := run(i, st.scs[i-lo])
					out[i] = BatchResult{Result: res, Err: err}
				}
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for lo := 0; lo < n; lo += primeChunk {
		select {
		case jobs <- lo:
		case <-done:
			for j := lo; j < n; j++ {
				out[j] = BatchResult{Result: Result{Index: -1, Distance: -1}, Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return out
}

// BatchQuery answers many queries concurrently over a fixed worker pool.
// Queries are independent in the cell-probe model (each runs its own
// k-round prober against the shared tables), so they parallelize cleanly;
// the table oracles are safe for concurrent probing and memoize shared
// cells across workers.
//
// workers <= 0 selects runtime.GOMAXPROCS(0). Results are returned in
// input order.
func (ix *Index) BatchQuery(xs []Point, workers int) []BatchResult {
	return ix.BatchQueryContext(context.Background(), xs, workers)
}

// BatchQueryContext is BatchQuery under a context: once ctx is cancelled
// or its deadline passes, no further queries are dispatched and the
// remaining slots carry ctx.Err(). Queries already in flight run to
// completion, so the returned slice always has len(xs) entries in input
// order.
func (ix *Index) BatchQueryContext(ctx context.Context, xs []Point, workers int) []BatchResult {
	run := func(i int, sc *Scratch) (Result, error) {
		return ix.QueryScratch(xs[i], sc)
	}
	// The non-boosted Algorithm 1 scheme has a query-independent first
	// round; prime each chunk's sketches with the blocked kernel.
	if primer, ok := ix.scheme.(core.BatchPrimer); ok {
		return batchRunPrimed(ctx, xs, workers, primer, run)
	}
	return batchRun(ctx, len(xs), workers, run)
}

// BatchQueryNear is the λ-ANNS counterpart of BatchQuery: every query
// costs exactly one probe, making the batch embarrassingly parallel.
func (ix *Index) BatchQueryNear(xs []Point, lambda float64, workers int) []BatchResult {
	return ix.BatchQueryNearContext(context.Background(), xs, lambda, workers)
}

// BatchQueryNearContext is BatchQueryNear with cancellation semantics
// identical to BatchQueryContext.
func (ix *Index) BatchQueryNearContext(ctx context.Context, xs []Point, lambda float64, workers int) []BatchResult {
	return batchRun(ctx, len(xs), workers, func(i int, sc *Scratch) (Result, error) {
		return ix.QueryNearScratch(xs[i], lambda, sc)
	})
}
