package anns

import (
	"runtime"
	"sync"
)

// BatchResult pairs a query's position with its outcome.
type BatchResult struct {
	Result
	Err error
}

// BatchQuery answers many queries concurrently over a fixed worker pool.
// Queries are independent in the cell-probe model (each runs its own
// k-round prober against the shared tables), so they parallelize cleanly;
// the table oracles are safe for concurrent probing and memoize shared
// cells across workers.
//
// workers <= 0 selects runtime.GOMAXPROCS(0). Results are returned in
// input order.
func (ix *Index) BatchQuery(xs []Point, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	out := make([]BatchResult, len(xs))
	if len(xs) == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := ix.Query(xs[i])
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	for i := range xs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// BatchQueryNear is the λ-ANNS counterpart of BatchQuery: every query
// costs exactly one probe, making the batch embarrassingly parallel.
func (ix *Index) BatchQueryNear(xs []Point, lambda float64, workers int) []BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	out := make([]BatchResult, len(xs))
	if len(xs) == 0 {
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := ix.QueryNear(xs[i], lambda)
				out[i] = BatchResult{Result: res, Err: err}
			}
		}()
	}
	for i := range xs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
