package anns

import (
	"fmt"
	"os"

	"repro/internal/snapshot"
)

// LoadMode selects how OpenSnapshot materializes a snapshot file.
type LoadMode int

const (
	// LoadAuto prefers the zero-copy mmap path and transparently falls
	// back to the heap decoder when the file cannot be mapped (platform
	// without mmap, map failure). The fallback reason is recorded on the
	// returned Loaded; decode errors — a corrupt or malformed file — are
	// never "fallen back" from, they fail the open on either path.
	LoadAuto LoadMode = iota
	// LoadHeap forces the copying stream decoder: the whole file is read
	// once, the checksum is verified inline, and the index owns its
	// memory (no mapping to keep alive).
	LoadHeap
	// LoadMmap requires the zero-copy path: the open fails if the file
	// cannot be mapped.
	LoadMmap
)

func (m LoadMode) String() string {
	switch m {
	case LoadAuto:
		return "auto"
	case LoadHeap:
		return "heap"
	case LoadMmap:
		return "mmap"
	default:
		return fmt.Sprintf("mode[%d]", int(m))
	}
}

// Loaded is an index opened from a snapshot file, along with the
// provenance the serving layer reports. Exactly one of Index and Sharded
// is non-nil (the mutable tier has its own loader and stays on the heap
// path; see DESIGN.md §9).
//
// When Source is "mmap" the index's flat sections are views into the
// mapping: the Loaded must be kept alive and unclosed for as long as the
// index serves, and Close must be called once it is retired. On the heap
// path Close is a no-op (the index owns its memory), so callers can
// defer it unconditionally.
type Loaded struct {
	Index   *Index
	Sharded *ShardedIndex
	// Source is "mmap" or "heap".
	Source string
	// MappedBytes is the mapping length when Source is "mmap".
	MappedBytes int64
	// FallbackReason is set when LoadAuto wanted mmap but took the heap
	// path.
	FallbackReason string

	mapping *snapshot.Mapped
}

// Close releases the underlying mapping, invalidating the loaded index
// when it was mmap-backed. Safe to call on heap-backed loads and to call
// twice.
func (l *Loaded) Close() error {
	if l.mapping == nil {
		return nil
	}
	return l.mapping.Close()
}

// VerifyChecksum runs the full CRC check of the backing file. The mmap
// open validates structure only (see snapshot.ByteDecoder); serving
// daemons run this asynchronously after boot. On heap-backed loads the
// checksum was already verified inline and this returns nil.
func (l *Loaded) VerifyChecksum() error {
	if l.mapping == nil {
		return nil
	}
	return l.mapping.VerifyChecksum()
}

// OpenSnapshot opens a serving snapshot (KindIndex or KindSharded) from
// a file, choosing the decode path per mode. It is the path-based
// complement of LoadAny: LoadAny streams from any io.Reader, OpenSnapshot
// can hand out indexes whose storage is borrowed straight from the page
// cache.
func OpenSnapshot(path string, mode LoadMode) (*Loaded, error) {
	if mode == LoadHeap {
		return openHeap(path, "")
	}
	m, err := snapshot.MapFile(path)
	if err != nil {
		if mode == LoadMmap {
			return nil, fmt.Errorf("anns: mmap load of %s: %w", path, err)
		}
		return openHeap(path, err.Error())
	}
	d, err := m.Decoder()
	if err != nil {
		m.Close()
		return nil, err
	}
	l := &Loaded{Source: "mmap", MappedBytes: int64(m.Len()), mapping: m}
	switch d.Kind() {
	case snapshot.KindIndex:
		l.Index, err = decodeIndexBody(d)
	case snapshot.KindSharded:
		l.Sharded, err = decodeShardedBody(d)
	case snapshot.KindMutable:
		err = fmt.Errorf("%w: snapshot kind %q needs the mutable tier (LoadMutable / annsd -mutable)",
			snapshot.ErrFormat, snapshot.KindName(d.Kind()))
	default:
		err = fmt.Errorf("%w: snapshot kind %q is not servable",
			snapshot.ErrFormat, snapshot.KindName(d.Kind()))
	}
	if err == nil {
		err = d.Close()
	}
	if err != nil {
		m.Close()
		return nil, err
	}
	return l, nil
}

// openHeap is the stream-decoder arm of OpenSnapshot.
func openHeap(path, fallbackReason string) (*Loaded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix, sx, err := LoadAny(f)
	if err != nil {
		return nil, err
	}
	return &Loaded{Index: ix, Sharded: sx, Source: "heap", FallbackReason: fallbackReason}, nil
}
