package anns

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// MutableSharded is the single-process composition of the sharded tier
// and the mutable tier: S MutableIndex shards over the round-robin
// partition, with global IDs assigned exactly as a router assigns them
// across a replicated cluster — global g lives in shard g%S as that
// shard's local ID g/S (the RoundRobinGlobal formula, which round-robin
// writes preserve forever: after N base points, shard s's next local ID
// is always (next global landing on s)/S).
//
// It exists as the replication oracle: `annsd -mutable -shards S` serves
// one of these, and `annsload -compare` holds a routed S-shard replica
// cluster byte-identical to it over a fixed-seed mutation stream —
// results, accounting, and assigned IDs. Queries fold with the same
// MergeShardReplies/RoundRobinGlobal pair the router uses, so the
// equivalence is structural.
type MutableSharded struct {
	opts   Options
	shards []*MutableIndex
	global func(shard, local int) int

	mu         sync.Mutex // serializes mutations: global ID assignment is an order
	nextGlobal uint64
}

// BuildMutableSharded builds the S-shard base with BuildSharded (same
// partition, same derived seeds as `annsctl shard-split`) and layers one
// MutableIndex per shard. cfg applies per shard with its Options field
// overridden by each shard's own (derived-seed) build options, so shard
// s's tier evolves exactly like a replica booted from shard-s.snap.
// cfg.WALPath, when set, expands to per-shard logs "<path>.<s>";
// cfg.SnapshotPath is rejected (a compaction snapshot truncates the WAL,
// which would desynchronize replication offsets — DESIGN.md §11).
func BuildMutableSharded(points []Point, shards int, opts Options, cfg MutableConfig) (*MutableSharded, error) {
	if cfg.SnapshotPath != "" {
		return nil, errors.New("anns: MutableSharded does not support SnapshotPath (WAL truncation breaks replication offsets)")
	}
	sx, err := BuildSharded(points, shards, opts)
	if err != nil {
		return nil, err
	}
	ms := &MutableSharded{
		opts:       sx.Options(),
		shards:     make([]*MutableIndex, shards),
		global:     RoundRobinGlobal(shards),
		nextGlobal: uint64(len(points)),
	}
	for s := 0; s < shards; s++ {
		c := cfg
		c.Options = Options{} // adopt the shard base's derived-seed options
		if cfg.WALPath != "" {
			c.WALPath = fmt.Sprintf("%s.%d", cfg.WALPath, s)
		}
		ms.shards[s], err = NewMutable(sx.Shard(s), c)
		if err != nil {
			for _, mx := range ms.shards[:s] {
				mx.Close()
			}
			return nil, fmt.Errorf("anns: mutable shard %d/%d: %w", s, shards, err)
		}
	}
	// WAL replay may have advanced the shards past the base: the next
	// global ID is the smallest global that would land on any shard's
	// next local slot (min over s of NextID_s·S + s, which is len(points)
	// when nothing replayed).
	for s, mx := range ms.shards {
		c := mx.MutableStats().NextID*uint64(shards) + uint64(s)
		if s == 0 || c < ms.nextGlobal {
			ms.nextGlobal = c
		}
	}
	return ms, nil
}

// Insert routes p to shard nextGlobal%S and returns the global ID. The
// shard must assign local ID nextGlobal/S — anything else means its
// state diverged from the round-robin order and is an error, not a
// silently wrong translation.
func (ms *MutableSharded) Insert(p Point) (uint64, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	g := ms.nextGlobal
	S := uint64(len(ms.shards))
	local, err := ms.shards[g%S].Insert(p)
	if err != nil {
		return 0, err
	}
	if local != g/S {
		return 0, fmt.Errorf("anns: shard %d assigned local id %d to global %d, want %d", g%S, local, g, g/S)
	}
	ms.nextGlobal = g + 1
	return g, nil
}

// Delete tombstones global ID g on its shard, reporting whether it was
// live.
func (ms *MutableSharded) Delete(g uint64) (bool, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	S := uint64(len(ms.shards))
	return ms.shards[g%S].Delete(g / S)
}

// Query fans out to every mutable shard concurrently and folds the
// per-shard answers — each already a stable local ID — through the
// round-robin translation, with the shared merge accounting.
func (ms *MutableSharded) Query(x Point) (Result, error) {
	sc := acquireShardScratch(len(ms.shards))
	defer shardScratchPool.Put(sc)
	var wg sync.WaitGroup
	for s := range ms.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			res, err := ms.shards[s].Query(x)
			sc.results[s] = res
			sc.ok[s] = err == nil
		}(s)
	}
	wg.Wait()
	for s, r := range sc.results {
		sc.replies[s] = ShardReply{Result: r, OK: sc.ok[s]}
	}
	out := MergeShardReplies(sc.replies, ms.global)
	if out.Index < 0 {
		return out, errors.New("anns: query failed on every shard")
	}
	return out, nil
}

// QueryScratch implements the server's scratch surface; the fan-out runs
// on per-shard pooled contexts, so the caller's scratchpad is unused.
func (ms *MutableSharded) QueryScratch(x Point, _ *Scratch) (Result, error) {
	return ms.Query(x)
}

// QueryNear answers the λ-near decision over all shards: YES from any
// shard (closest witness wins) beats NO; NO only when every shard
// answered NO; errors surface only when no shard answered at all.
func (ms *MutableSharded) QueryNear(x Point, lambda float64) (Result, error) {
	sc := acquireShardScratch(len(ms.shards))
	defer shardScratchPool.Put(sc)
	var wg sync.WaitGroup
	for s := range ms.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			res, err := ms.shards[s].QueryNear(x, lambda)
			sc.results[s] = res
			sc.errs[s] = err
			sc.ok[s] = err == nil && res.Index >= 0
		}(s)
	}
	wg.Wait()
	for s, r := range sc.results {
		sc.replies[s] = ShardReply{Result: r, OK: sc.ok[s]}
	}
	out := MergeShardReplies(sc.replies, ms.global)
	if out.Index < 0 {
		for _, err := range sc.errs {
			if err == nil {
				return out, nil // NO is an answer
			}
		}
		return out, fmt.Errorf("anns: near query failed on every shard: %w", sc.errs[0])
	}
	return out, nil
}

// QueryNearScratch is the λ-ANNS counterpart of QueryScratch.
func (ms *MutableSharded) QueryNearScratch(x Point, lambda float64, _ *Scratch) (Result, error) {
	return ms.QueryNear(x, lambda)
}

// BatchQueryContext answers many queries over a fixed worker pool, each
// worker running the full shard fan-out.
func (ms *MutableSharded) BatchQueryContext(ctx context.Context, xs []Point, workers int) []BatchResult {
	return batchRun(ctx, len(xs), workers, func(i int, sc *Scratch) (Result, error) {
		return ms.QueryScratch(xs[i], sc)
	})
}

// Len returns the live point count across shards.
func (ms *MutableSharded) Len() int {
	n := 0
	for _, mx := range ms.shards {
		n += mx.Len()
	}
	return n
}

// Shards returns the shard count.
func (ms *MutableSharded) Shards() int { return len(ms.shards) }

// Shard returns shard s's MutableIndex (answers in shard-local IDs).
func (ms *MutableSharded) Shard(s int) *MutableIndex { return ms.shards[s] }

// Options returns the normalized build options (user seed; shards derive
// their own).
func (ms *MutableSharded) Options() Options { return ms.opts }

// Generation sums the shard generations: any mutation, seal, segment
// landing, or compaction on any shard advances it, which is all the
// result cache's epoch invalidation needs.
func (ms *MutableSharded) Generation() uint64 {
	var g uint64
	for _, mx := range ms.shards {
		g += mx.Generation()
	}
	return g
}

// MutableStats aggregates the shard tiers (sums; NextID is the next
// global ID; ReplicationOffset sums the per-shard applied offsets).
func (ms *MutableSharded) MutableStats() MutableStats {
	ms.mu.Lock()
	next := ms.nextGlobal
	ms.mu.Unlock()
	out := MutableStats{NextID: next}
	for _, mx := range ms.shards {
		st := mx.MutableStats()
		out.LiveN += st.LiveN
		out.Memtable += st.Memtable
		out.Sealed += st.Sealed
		out.SegmentsBuilt += st.SegmentsBuilt
		out.Compactions += st.Compactions
		out.Tombstones += st.Tombstones
		out.Inserts += st.Inserts
		out.Deletes += st.Deletes
		out.WALReplayed += st.WALReplayed
		out.WALBytes += st.WALBytes
		out.ReplicationOffset += st.ReplicationOffset
		out.Generation += st.Generation
		if st.LastCompactError != "" && out.LastCompactError == "" {
			out.LastCompactError = st.LastCompactError
		}
	}
	return out
}

// WaitIdle blocks until every shard's queued background work finishes.
func (ms *MutableSharded) WaitIdle() {
	for _, mx := range ms.shards {
		mx.WaitIdle()
	}
}

// Close closes every shard tier, returning the first error.
func (ms *MutableSharded) Close() error {
	var first error
	for _, mx := range ms.shards {
		if err := mx.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
