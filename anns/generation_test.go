package anns_test

import (
	"testing"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
)

// TestMutableGeneration pins the invalidation contract the result cache
// depends on: the generation counter advances on every state change that
// can alter a query's folded reply — insert, delete, memtable seal,
// segment build landing, flush, and compaction swap — and never moves
// while the structure is quiescent.
func TestMutableGeneration(t *testing.T) {
	const d = 128
	mx := newMutable(t, nil, anns.MutableConfig{
		Options:     anns.Options{Dimension: d, Rounds: 2, Seed: 5},
		MemtableCap: 4,
	})
	r := rng.New(3)
	if g := mx.Generation(); g != 0 {
		t.Fatalf("fresh tier generation = %d, want 0", g)
	}

	// Insert bumps.
	g0 := mx.Generation()
	if _, err := mx.Insert(hamming.Random(r, d)); err != nil {
		t.Fatal(err)
	}
	g1 := mx.Generation()
	if g1 <= g0 {
		t.Fatalf("insert did not advance generation: %d -> %d", g0, g1)
	}

	// Queries do NOT bump.
	if _, err := mx.Query(hamming.Random(r, d)); err != nil {
		t.Fatal(err)
	}
	if g := mx.Generation(); g != g1 {
		t.Fatalf("query moved generation: %d -> %d", g1, g)
	}

	// Delete bumps.
	if ok, err := mx.Delete(0); !ok || err != nil {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	g2 := mx.Generation()
	if g2 <= g1 {
		t.Fatalf("delete did not advance generation: %d -> %d", g1, g2)
	}

	// Filling the memtable to MemtableCap seals it AND (synchronous mode)
	// lands the segment build: the generation must advance past the pure
	// per-insert bumps — sealing and the build landing each count.
	for i := 0; i < 4; i++ {
		if _, err := mx.Insert(hamming.Random(r, d)); err != nil {
			t.Fatal(err)
		}
	}
	g3 := mx.Generation()
	if g3 < g2+4+2 {
		t.Fatalf("seal+build did not advance generation beyond inserts: %d -> %d", g2, g3)
	}

	// Flush of a non-empty memtable bumps.
	if _, err := mx.Insert(hamming.Random(r, d)); err != nil {
		t.Fatal(err)
	}
	g4 := mx.Generation()
	mx.Flush()
	g5 := mx.Generation()
	if g5 <= g4 {
		t.Fatalf("flush did not advance generation: %d -> %d", g4, g5)
	}
	mx.Flush() // empty memtable: no-op, no bump
	if g := mx.Generation(); g != g5 {
		t.Fatalf("empty flush moved generation: %d -> %d", g5, g)
	}

	// Compaction swap bumps.
	if err := mx.Compact(); err != nil {
		t.Fatal(err)
	}
	g6 := mx.Generation()
	if g6 <= g5 {
		t.Fatalf("compaction did not advance generation: %d -> %d", g5, g6)
	}

	// The stats block mirrors the counter.
	if st := mx.MutableStats(); st.Generation != g6 {
		t.Fatalf("MutableStats.Generation = %d, want %d", st.Generation, g6)
	}

	// Deleting a dead ID is a no-op and must not bump.
	if ok, err := mx.Delete(0); ok || err != nil {
		t.Fatalf("re-delete: ok=%v err=%v", ok, err)
	}
	if g := mx.Generation(); g != g6 {
		t.Fatalf("no-op delete moved generation: %d -> %d", g6, g)
	}
}
