package anns_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/anns"
	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

// churnOracle is an independently written reference implementation of
// the mutable tier's query semantics: it mirrors the documented state
// machine (memtable seals at the cap, segments build with
// SegmentSeed(seed, seq), compactions rebuild over ID-ascending live
// points with CompactionSeed(seed, epoch)) and folds per-tier answers
// with the exported MergeShardReplies. The churn test drives the real
// MutableIndex and this oracle through the same fixed-seed operation
// stream and requires byte-identical answers — results AND
// rounds/probes accounting — after every operation.
type churnOracle struct {
	t    *testing.T
	opts anns.Options
	cap_ int

	base    *anns.Index
	basePts []anns.Point
	baseIDs []uint64
	segIdx  []*anns.Index
	segPts  [][]anns.Point
	segIDs  [][]uint64
	memIDs  []uint64
	memPts  []anns.Point
	dead    map[uint64]bool
	nextID  uint64
	segSeq  uint64
	epoch   uint64
}

func (o *churnOracle) insert(p anns.Point) {
	o.memIDs = append(o.memIDs, o.nextID)
	o.memPts = append(o.memPts, p)
	o.nextID++
	if len(o.memIDs) >= o.cap_ {
		opts := o.opts
		opts.Seed = anns.SegmentSeed(o.opts.Seed, o.segSeq)
		o.segSeq++
		ix, err := anns.Build(o.memPts, opts)
		if err != nil {
			o.t.Fatalf("oracle segment build: %v", err)
		}
		o.segIdx = append(o.segIdx, ix)
		o.segPts = append(o.segPts, o.memPts)
		o.segIDs = append(o.segIDs, o.memIDs)
		o.memIDs, o.memPts = nil, nil
	}
}

func (o *churnOracle) delete(id uint64) { o.dead[id] = true }

func (o *churnOracle) compact() {
	var ids []uint64
	var pts []anns.Point
	if o.base != nil {
		for j, p := range o.basePts {
			id := uint64(j)
			if o.baseIDs != nil {
				id = o.baseIDs[j]
			}
			if !o.dead[id] {
				ids = append(ids, id)
				pts = append(pts, p)
			}
		}
	}
	for s, segIDs := range o.segIDs {
		for j, id := range segIDs {
			if !o.dead[id] {
				ids = append(ids, id)
				pts = append(pts, o.segPts[s][j])
			}
		}
	}
	opts := o.opts
	opts.Seed = anns.CompactionSeed(o.opts.Seed, o.epoch)
	o.epoch++
	ix, err := anns.Build(pts, opts)
	if err != nil {
		o.t.Fatalf("oracle compaction build: %v", err)
	}
	o.base, o.basePts, o.baseIDs = ix, pts, ids
	o.segIdx, o.segPts, o.segIDs = nil, nil, nil
	// Tombstones the compaction applied are retired; the memtable's
	// tombstoned entries (not captured) keep theirs.
	live := map[uint64]bool{}
	for _, id := range o.memIDs {
		live[id] = true
	}
	for id := range o.dead {
		if !live[id] {
			delete(o.dead, id)
		}
	}
}

// query folds per-tier reference answers exactly as the spec says the
// tier must.
func (o *churnOracle) query(x anns.Point) (anns.Result, bool) {
	var replies []anns.ShardReply
	var idmaps [][]uint64
	ask := func(ix *anns.Index, ids []uint64) {
		res, err := ix.Query(x)
		ok := err == nil
		if ok && o.dead[tierID(ids, res.Index)] {
			ok = false
		}
		replies = append(replies, anns.ShardReply{Result: res, OK: ok})
		idmaps = append(idmaps, ids)
	}
	if o.base != nil {
		ask(o.base, o.baseIDs)
	}
	for s, ix := range o.segIdx {
		ask(ix, o.segIDs[s])
	}
	if len(o.memIDs) > 0 {
		res := anns.Result{Index: -1, Distance: -1, Rounds: 1,
			Probes: len(o.memIDs), MaxParallel: len(o.memIDs)}
		ok := false
		for j, p := range o.memPts {
			if o.dead[o.memIDs[j]] {
				continue
			}
			dist := bitvec.Distance(p, x)
			if !ok || dist < res.Distance {
				ok = true
				res.Index, res.Distance = j, dist
			}
		}
		replies = append(replies, anns.ShardReply{Result: res, OK: ok})
		idmaps = append(idmaps, o.memIDs)
	}
	if len(replies) == 0 {
		return anns.Result{Index: -1, Distance: -1}, false
	}
	out := anns.MergeShardReplies(replies, func(s, j int) int {
		return int(tierID(idmaps[s], j))
	})
	return out, out.Index >= 0
}

func tierID(ids []uint64, j int) uint64 {
	if ids == nil {
		return uint64(j)
	}
	return ids[j]
}

// TestChurnMatchesReferenceFold is the mid-churn half of the acceptance
// criterion: a fixed-seed insert/delete/query interleaving across seals
// must answer byte-identically to the reference fold after every
// single operation.
func TestChurnMatchesReferenceFold(t *testing.T) {
	const d, n0, capSize = 128, 24, 8
	opts := anns.Options{Dimension: d, Rounds: 2, Seed: 1234}
	pts := testPoints(t, d, n0)
	mkBase := func() *anns.Index {
		ix, err := anns.Build(pts, opts)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	mx := newMutable(t, mkBase(), anns.MutableConfig{MemtableCap: capSize})
	o := &churnOracle{t: t, opts: mx.Options(), cap_: capSize,
		base: mkBase(), basePts: pts, dead: map[uint64]bool{}, nextID: uint64(n0)}

	r := rng.New(4242)
	var live []uint64
	for i := 0; i < n0; i++ {
		live = append(live, uint64(i))
	}
	allPts := append([]anns.Point(nil), pts...)
	for step := 0; step < 120; step++ {
		switch roll := r.Intn(100); {
		case roll < 45: // insert a perturbed copy of a random known point
			p := hamming.AtDistance(r, allPts[r.Intn(len(allPts))], d, 1+r.Intn(30))
			id, err := mx.Insert(p)
			if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			o.insert(p)
			live = append(live, id)
			allPts = append(allPts, p)
		case roll < 60 && len(live) > 2: // delete a random live id
			pick := r.Intn(len(live))
			id := live[pick]
			ok, err := mx.Delete(id)
			if !ok || err != nil {
				t.Fatalf("step %d: delete %d: ok=%v err=%v", step, id, ok, err)
			}
			o.delete(id)
			live = append(live[:pick], live[pick+1:]...)
		}
		x := hamming.AtDistance(r, allPts[r.Intn(len(allPts))], d, 1+r.Intn(25))
		got, gerr := mx.Query(x)
		want, wok := o.query(x)
		if gerr != nil {
			got.Index = -2
		}
		if !wok {
			want.Index = -2
		}
		if got != want {
			t.Fatalf("step %d: mutable answers %+v, reference fold %+v", step, got, want)
		}
	}
	st := mx.MutableStats()
	if st.Sealed == 0 || st.SegmentsBuilt == 0 {
		t.Fatalf("churn never sealed a segment (stats %+v) — the test lost its teeth", st)
	}
}

// TestCompactionBoundaryMatchesRebuild is the compaction half of the
// acceptance criterion: at every compaction boundary (memtable drained
// into seals, then compacted), the mutable tier must answer
// byte-identically — results and rounds/probes accounting — to a
// from-scratch static Build over the live points under the compaction
// seed.
func TestCompactionBoundaryMatchesRebuild(t *testing.T) {
	const d, n0, capSize = 128, 16, 8
	opts := anns.Options{Dimension: d, Rounds: 2, Seed: 99}
	pts := testPoints(t, d, n0)
	base, err := anns.Build(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	mx := newMutable(t, base, anns.MutableConfig{MemtableCap: capSize})
	normOpts := mx.Options()

	r := rng.New(777)
	type entry struct {
		id uint64
		p  anns.Point
	}
	livePoints := make([]entry, 0, 64)
	for i, p := range pts {
		livePoints = append(livePoints, entry{uint64(i), p})
	}
	queries := make([]anns.Point, 40)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, pts[i%n0], d, 1+i%30)
	}

	for epoch := uint64(0); epoch < 3; epoch++ {
		// Insert exactly two memtables' worth so the boundary state is
		// pure base (empty memtable, no leftover segments), then delete a
		// couple of points and compact.
		for i := 0; i < 2*capSize; i++ {
			p := hamming.AtDistance(r, pts[r.Intn(n0)], d, 1+r.Intn(40))
			id, err := mx.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			livePoints = append(livePoints, entry{id, p})
		}
		for k := 0; k < 3; k++ {
			pick := r.Intn(len(livePoints))
			if ok, err := mx.Delete(livePoints[pick].id); !ok || err != nil {
				t.Fatal("delete failed")
			}
			livePoints = append(livePoints[:pick], livePoints[pick+1:]...)
		}
		if err := mx.Compact(); err != nil {
			t.Fatalf("epoch %d: Compact: %v", epoch, err)
		}
		if st := mx.MutableStats(); st.Memtable != 0 || st.Sealed != 0 || st.Tombstones != 0 {
			t.Fatalf("epoch %d: boundary state not pure base: %+v", epoch, st)
		}

		// From-scratch rebuild over the live points in ID order.
		rebuildOpts := normOpts
		rebuildOpts.Seed = anns.CompactionSeed(normOpts.Seed, epoch)
		liveIDs := make([]uint64, len(livePoints))
		livePts := make([]anns.Point, len(livePoints))
		for i, e := range livePoints {
			liveIDs[i] = e.id
			livePts[i] = e.p
		}
		rebuilt, err := anns.Build(livePts, rebuildOpts)
		if err != nil {
			t.Fatal(err)
		}
		for qi, x := range queries {
			got, gerr := mx.Query(x)
			want, werr := rebuilt.Query(x)
			if werr == nil {
				want.Index = int(liveIDs[want.Index])
			} else {
				want.Index = -2
			}
			if gerr != nil {
				got.Index = -2
			}
			if got != want {
				t.Fatalf("epoch %d query %d: mutable %+v (err=%v), rebuild %+v (err=%v)",
					epoch, qi, got, gerr, want, werr)
			}
			gotN, gerrN := mx.QueryNear(x, 8)
			wantN, werrN := rebuilt.QueryNear(x, 8)
			if werrN == nil && wantN.Index >= 0 {
				wantN.Index = int(liveIDs[wantN.Index])
			}
			if (gerrN == nil) != (werrN == nil) || (gerrN == nil && gotN != wantN) {
				t.Fatalf("epoch %d near %d: mutable %+v (err=%v), rebuild %+v (err=%v)",
					epoch, qi, gotN, gerrN, wantN, werrN)
			}
		}
	}
}

// TestQueryRacesSealAndCompaction drives concurrent queries against an
// asynchronous tier while inserts force seals, background builds, and
// auto-compactions. Every answer must stay valid — a live ID with the
// correct distance — whichever side of a seal or swap the query lands
// on. Run under -race in CI.
func TestQueryRacesSealAndCompaction(t *testing.T) {
	const d, n0, inserts = 128, 24, 160
	opts := anns.Options{Dimension: d, Rounds: 2, Seed: 7}
	pts := testPoints(t, d, n0)
	base, err := anns.Build(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-generate every point so queriers can validate any ID the tier
	// may return without synchronizing with the inserter.
	r := rng.New(55)
	all := make([]anns.Point, n0+inserts)
	copy(all, pts)
	for i := n0; i < len(all); i++ {
		all[i] = hamming.Random(r, d)
	}
	mx, err := anns.NewMutable(base, anns.MutableConfig{
		Options: opts, MemtableCap: 16, CompactEvery: 2, // async, compacting
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qr := rng.New(uint64(1000 + g))
			for !stop.Load() {
				x := hamming.AtDistance(qr, all[qr.Intn(len(all))], d, 1+qr.Intn(20))
				res, err := mx.Query(x)
				if err != nil {
					continue // a scheme-level failure is legal; racing is not
				}
				if res.Index < 0 || res.Index >= len(all) {
					errc <- fmt.Errorf("id %d out of range", res.Index)
					return
				}
				if res.Distance != bitvec.Distance(all[res.Index], x) {
					errc <- fmt.Errorf("distance %d wrong for id %d", res.Distance, res.Index)
					return
				}
				if res.Rounds < 1 || res.Probes < 1 {
					errc <- fmt.Errorf("degenerate accounting %+v", res)
					return
				}
			}
		}(g)
	}
	for i := n0; i < len(all); i++ {
		if _, err := mx.Insert(all[i]); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	mx.WaitIdle()
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if st := mx.MutableStats(); st.Compactions == 0 || st.SegmentsBuilt == 0 {
		t.Fatalf("race test exercised no seals/compactions: %+v", st)
	}
}
