package anns_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/anns"
	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/snapshot"
)

// newMutable builds a synchronous mutable tier for tests (deterministic
// structure evolution).
func newMutable(t *testing.T, base *anns.Index, cfg anns.MutableConfig) *anns.MutableIndex {
	t.Helper()
	cfg.Synchronous = true
	mx, err := anns.NewMutable(base, cfg)
	if err != nil {
		t.Fatalf("NewMutable: %v", err)
	}
	t.Cleanup(func() { mx.Close() })
	return mx
}

// TestMutableMemtableIsExactOracle pins the delta tier's foundation:
// while everything lives in the memtable (no base, no seals), answers
// are byte-identical to a brute-force oracle — exact nearest live point,
// lowest-ID tie-break, one round, one probe per stored entry.
func TestMutableMemtableIsExactOracle(t *testing.T) {
	const d, n = 128, 50
	mx := newMutable(t, nil, anns.MutableConfig{
		Options:     anns.Options{Dimension: d, Rounds: 2, Seed: 9},
		MemtableCap: 4 * n, // never seals
	})
	r := rng.New(77)
	pts := make([]anns.Point, n)
	for i := range pts {
		pts[i] = hamming.Random(r, d)
		id, err := mx.Insert(pts[i])
		if err != nil || id != uint64(i) {
			t.Fatalf("insert %d: id=%d err=%v", i, id, err)
		}
	}
	deleted := map[int]bool{3: true, 17: true, 41: true}
	for id := range deleted {
		if ok, err := mx.Delete(uint64(id)); !ok || err != nil {
			t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
		}
	}
	if mx.Len() != n-len(deleted) {
		t.Fatalf("Len = %d, want %d", mx.Len(), n-len(deleted))
	}
	for trial := 0; trial < 40; trial++ {
		x := hamming.AtDistance(r, pts[trial%n], d, 1+trial%20)
		res, err := mx.Query(x)
		if err != nil {
			t.Fatalf("query %d: %v", trial, err)
		}
		// Brute-force oracle over live points, first minimal wins.
		best, bestDist := -1, -1
		for i, p := range pts {
			if deleted[i] {
				continue
			}
			dist := bitvec.Distance(p, x)
			if best < 0 || dist < bestDist {
				best, bestDist = i, dist
			}
		}
		want := anns.Result{Index: best, Distance: bestDist, Rounds: 1, Probes: n, MaxParallel: n}
		if res != want {
			t.Fatalf("query %d: got %+v, want %+v", trial, res, want)
		}
	}
	// λ-decision: the exact tier answers YES within Gamma·lambda, NO above.
	x := hamming.AtDistance(r, pts[0], d, 5)
	res, err := mx.QueryNear(x, 5)
	if err != nil || res.Index < 0 || res.Distance > 10 {
		t.Fatalf("QueryNear YES: %+v err=%v", res, err)
	}
	if res, err = mx.QueryNear(x, 0.5); err != nil || res.Index != -1 {
		// Nearest is at distance 5 > 2·0.5: must answer NO.
		t.Fatalf("QueryNear NO: %+v err=%v", res, err)
	}
}

func TestMutableValidationAndLifecycle(t *testing.T) {
	const d = 64
	mx := newMutable(t, nil, anns.MutableConfig{Options: anns.Options{Dimension: d}})
	if _, err := mx.Insert(make(anns.Point, 5)); err == nil {
		t.Error("Insert accepted a wrong-width point")
	}
	if ok, err := mx.Delete(99); ok || err != nil {
		t.Errorf("Delete of absent id: ok=%v err=%v", ok, err)
	}
	if _, err := mx.Query(make(anns.Point, 1)); err == nil {
		t.Error("Query on an empty tier succeeded")
	}
	if res, err := mx.QueryNear(make(anns.Point, 1), 3); err != nil || res.Index != -1 {
		t.Errorf("QueryNear on empty tier: %+v err=%v (want the NO answer)", res, err)
	}
	if err := mx.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := mx.Insert(make(anns.Point, 1)); err == nil {
		t.Error("Insert after Close succeeded")
	}
	if _, err := anns.NewMutable(nil, anns.MutableConfig{Options: anns.Options{Dimension: d}, MemtableCap: 1}); err == nil {
		t.Error("MemtableCap=1 accepted")
	}
	if _, err := anns.NewMutable(nil, anns.MutableConfig{}); err == nil {
		t.Error("missing dimension accepted")
	}
}

// TestMutableLayersOverBase checks the fan-out across base + memtable:
// a fresh insert closer than anything in the base wins, a deleted base
// point stops being returned, and accounting sums across tiers.
func TestMutableLayersOverBase(t *testing.T) {
	const d, n = 256, 80
	pts := testPoints(t, d, n)
	base, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mx := newMutable(t, base, anns.MutableConfig{MemtableCap: 1 << 20})
	r := rng.New(5)
	x := hamming.Random(r, d)
	planted := hamming.AtDistance(r, x, d, 2)
	id, err := mx.Insert(planted)
	if err != nil || id != uint64(n) {
		t.Fatalf("insert: id=%d err=%v", id, err)
	}
	res, err := mx.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != int(id) || res.Distance != 2 {
		t.Fatalf("planted insert did not win: %+v", res)
	}
	if res.Rounds < 1 || res.Probes <= 1 {
		t.Fatalf("accounting did not aggregate tiers: %+v", res)
	}
	// Delete the winner; the answer must move off the tombstone.
	if ok, _ := mx.Delete(id); !ok {
		t.Fatal("delete failed")
	}
	res2, err := mx.Query(x)
	if err == nil && res2.Index == int(id) {
		t.Fatalf("tombstoned point returned: %+v", res2)
	}
	if mx.Len() != n {
		t.Fatalf("Len = %d, want %d", mx.Len(), n)
	}
}

// queryAll answers the fixed query set, keeping failures as Index -2
// sentinel results so error-ness participates in equality.
func queryAll(s interface {
	Query(anns.Point) (anns.Result, error)
}, qs []anns.Point) []anns.Result {
	out := make([]anns.Result, len(qs))
	for i, q := range qs {
		res, err := s.Query(q)
		if err != nil {
			res.Index = -2
		}
		out[i] = res
	}
	return out
}

// TestMutableSnapshotRoundTrip saves a tier mid-life — base, a built
// sealed segment, a live memtable, tombstones — and requires the loaded
// tier to answer byte-identically and to report the same state, with
// Inspect agreeing on the section counts (the format-layer walk and the
// anns codec are written independently; this test pins them together).
func TestMutableSnapshotRoundTrip(t *testing.T) {
	const d, n = 128, 40
	pts := testPoints(t, d, n)
	base, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	mx := newMutable(t, base, anns.MutableConfig{MemtableCap: 8})
	r := rng.New(21)
	for i := 0; i < 11; i++ { // one sealed (and built) segment + 3 memtable entries
		if _, err := mx.Insert(hamming.Random(r, d)); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []uint64{2, uint64(n) + 1, uint64(n) + 9} { // base, sealed, memtable
		if ok, err := mx.Delete(id); !ok || err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
	}
	var buf bytes.Buffer
	if err := anns.SaveMutable(&buf, mx); err != nil {
		t.Fatalf("SaveMutable: %v", err)
	}

	info, err := snapshot.Inspect(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Kind != snapshot.KindMutable || info.Mutable == nil {
		t.Fatalf("Inspect: %+v", info)
	}
	mi := info.Mutable
	if mi.Base != n || mi.Segments != 1 || mi.RawSegments != 0 ||
		mi.Memtable != 3 || mi.Tombstones != 3 || mi.NextID != uint64(n)+11 {
		t.Fatalf("Inspect mutable summary: %+v", mi)
	}
	if info.N != mx.Len() {
		t.Fatalf("Inspect live N = %d, tier says %d", info.N, mx.Len())
	}

	loaded, err := anns.LoadMutable(bytes.NewReader(buf.Bytes()), anns.MutableConfig{Synchronous: true})
	if err != nil {
		t.Fatalf("LoadMutable: %v", err)
	}
	defer loaded.Close()
	if loaded.Len() != mx.Len() {
		t.Fatalf("loaded Len = %d, want %d", loaded.Len(), mx.Len())
	}
	qs := make([]anns.Point, 30)
	for i := range qs {
		qs[i] = hamming.AtDistance(r, pts[i%n], d, 1+i)
	}
	got, want := queryAll(loaded, qs), queryAll(mx, qs)
	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("query %d: loaded answers %+v, original %+v", i, got[i], want[i])
		}
	}
	st, lst := mx.MutableStats(), loaded.MutableStats()
	if lst.LiveN != st.LiveN || lst.Sealed != st.Sealed || lst.Memtable != st.Memtable ||
		lst.Tombstones != st.Tombstones || lst.NextID != st.NextID {
		t.Fatalf("loaded stats %+v, original %+v", lst, st)
	}
}

// TestLoadMutableFromKindIndex boots the tier from a plain static
// snapshot (the annsctl build / annsctl compact output).
func TestLoadMutableFromKindIndex(t *testing.T) {
	const d, n = 128, 30
	pts := testPoints(t, d, n)
	base, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := anns.SaveIndex(&buf, base); err != nil {
		t.Fatal(err)
	}
	mx, err := anns.LoadMutable(bytes.NewReader(buf.Bytes()), anns.MutableConfig{Synchronous: true})
	if err != nil {
		t.Fatalf("LoadMutable(KindIndex): %v", err)
	}
	defer mx.Close()
	if mx.Len() != n {
		t.Fatalf("Len = %d, want %d", mx.Len(), n)
	}
	if id, err := mx.Insert(pts[0].Clone()); err != nil || id != uint64(n) {
		t.Fatalf("first insert: id=%d err=%v", id, err)
	}
}

// TestMutableWALReplay pins durability: mutations against a WAL-backed
// tier survive an unclean stop — a reboot over the same base replays the
// log and answers byte-identically to the pre-stop tier.
func TestMutableWALReplay(t *testing.T) {
	const d, n = 128, 30
	walPath := filepath.Join(t.TempDir(), "wal.log")
	pts := testPoints(t, d, n)
	build := func() *anns.Index {
		base, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 2, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		return base
	}
	cfg := anns.MutableConfig{MemtableCap: 8, WALPath: walPath}
	mx := newMutable(t, build(), cfg)
	r := rng.New(31)
	var inserted []anns.Point
	for i := 0; i < 19; i++ { // two seals + 3 in the memtable
		p := hamming.Random(r, d)
		inserted = append(inserted, p)
		if _, err := mx.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []uint64{5, uint64(n) + 2} {
		if ok, err := mx.Delete(id); !ok || err != nil {
			t.Fatalf("delete %d: %v", id, err)
		}
	}
	qs := make([]anns.Point, 25)
	for i := range qs {
		qs[i] = hamming.AtDistance(r, inserted[i%len(inserted)], d, 1+i%10)
	}
	want := queryAll(mx, qs)
	wantLen := mx.Len()
	// No clean shutdown: the WAL alone must carry the state. (Every record
	// was fsynced on append; Close would only close the file handle.)

	rebooted, err := anns.NewMutable(build(), anns.MutableConfig{
		MemtableCap: 8, WALPath: walPath, Synchronous: true,
	})
	if err != nil {
		t.Fatalf("reboot: %v", err)
	}
	defer rebooted.Close()
	st := rebooted.MutableStats()
	if st.WALReplayed != 21 {
		t.Fatalf("WALReplayed = %d, want 21", st.WALReplayed)
	}
	if rebooted.Len() != wantLen {
		t.Fatalf("rebooted Len = %d, want %d", rebooted.Len(), wantLen)
	}
	got := queryAll(rebooted, qs)
	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("query %d: rebooted answers %+v, original %+v", i, got[i], want[i])
		}
	}
	// A WAL paired with the wrong base must be refused, not misapplied.
	if _, err := anns.NewMutable(nil, anns.MutableConfig{
		Options: anns.Options{Dimension: d}, WALPath: walPath, Synchronous: true,
	}); err == nil {
		t.Fatal("WAL over the wrong base accepted")
	}
}

// TestLoadAnyTypedErrors is the satellite fix's public-API face:
// zero-length and shorter-than-header files surface as the typed
// snapshot.ErrFormat from LoadAny, never a bare io error.
func TestLoadAnyTypedErrors(t *testing.T) {
	for name, raw := range map[string][]byte{
		"zero-length": {},
		"sub-header":  []byte("ANNSSNAP\x02"),
	} {
		if _, _, err := anns.LoadAny(bytes.NewReader(raw)); !errors.Is(err, snapshot.ErrFormat) {
			t.Errorf("LoadAny(%s): got %v, want snapshot.ErrFormat", name, err)
		}
	}
	// A mutable snapshot is typed, too: plain LoadAny names the right tool.
	mx := newMutable(t, nil, anns.MutableConfig{Options: anns.Options{Dimension: 64}})
	if _, err := mx.Insert(make(anns.Point, 1)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := anns.SaveMutable(&buf, mx); err != nil {
		t.Fatal(err)
	}
	_, _, err := anns.LoadAny(bytes.NewReader(buf.Bytes()))
	if !errors.Is(err, snapshot.ErrFormat) {
		t.Errorf("LoadAny(mutable) = %v, want ErrFormat", err)
	}
}
