package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/workload"
)

// One benchmark per experiment of DESIGN.md §4. Each iteration regenerates
// the experiment's table(s) at quick scale; cmd/annsbench runs the full
// sweeps. Reported metrics: wall time per regeneration plus, for the
// tradeoff experiments, a probes/query reference figure.

func benchExperiment(b *testing.B, id string) {
	e, ok := eval.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := eval.Config{Seed: 42, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

func BenchmarkE1Algo1Tradeoff(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2Algo2LargeK(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3LowerBoundGap(b *testing.B)      { benchExperiment(b, "E3") }
func BenchmarkE4PhaseTransition(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5LambdaANN(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE6VsLSH(b *testing.B)              { benchExperiment(b, "E6") }
func BenchmarkE7SketchAssumptions(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8Space(b *testing.B)              { benchExperiment(b, "E8") }
func BenchmarkE9LPMReduction(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkE10CommTranslation(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11ThresholdAblation(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12BoostingAblation(b *testing.B)  { benchExperiment(b, "E12") }
func BenchmarkE13GammaAblation(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14LPMSchemes(b *testing.B)        { benchExperiment(b, "E14") }

// BenchmarkQueryAlgo1 measures a single Algorithm 1 query end to end (the
// library's hot path) and reports probes/query as a custom metric.
func BenchmarkQueryAlgo1(b *testing.B) {
	r := rng.New(1)
	in := workload.PlantedNN(r, 1024, 300, 64, 40)
	idx := core.BuildIndex(in.DB, 1024, core.Params{Gamma: 2, Seed: 2})
	a := core.NewAlgo1(idx, 3)
	// Warm the lazy per-level sketches so the loop measures queries.
	a.Query(in.Queries[0].X)
	b.ReportAllocs()
	b.ResetTimer()
	probes := 0
	for i := 0; i < b.N; i++ {
		res := a.Query(in.Queries[i%len(in.Queries)].X)
		probes += res.Stats.Probes
	}
	b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
}

// BenchmarkQueryAlgo2 is the Algorithm 2 counterpart.
func BenchmarkQueryAlgo2(b *testing.B) {
	r := rng.New(3)
	in := workload.PlantedNN(r, 1024, 300, 64, 40)
	idx := core.BuildIndex(in.DB, 1024, core.Params{Gamma: 2, K: 8, Seed: 4})
	a := core.NewAlgo2(idx, 8)
	a.Query(in.Queries[0].X)
	b.ReportAllocs()
	b.ResetTimer()
	probes := 0
	for i := 0; i < b.N; i++ {
		res := a.Query(in.Queries[i%len(in.Queries)].X)
		probes += res.Stats.Probes
	}
	b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
}

// BenchmarkBuildIndex measures preprocessing cost (family + tables).
func BenchmarkBuildIndex(b *testing.B) {
	r := rng.New(5)
	in := workload.PlantedNN(r, 1024, 300, 1, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildIndex(in.DB, 1024, core.Params{Gamma: 2, Seed: uint64(i)})
	}
}
